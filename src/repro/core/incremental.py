"""Incremental (streaming) entity resolution on top of Power.

An extension beyond the paper: records often arrive over time, and
re-resolving the whole table on every arrival wastes both computation and
crowd money.  :class:`IncrementalResolver` keeps the resolved state —
clusters plus every pair decision already paid for — and, per batch of new
records, builds a partial-order graph over *only the new candidate pairs*
(new×old and new×new), asks the crowd through the configured selector, and
folds the answers into the clustering.

Candidate generation rides the vectorized batch substrate: the record
texts live in a :class:`~repro.similarity.batch.TokenIndex` (a packed
bit-matrix of token sets), and each new record's candidate partners are
found with one vectorized Jaccard sweep against every earlier record —
bit-identical to the scalar token-overlap join, just without the Python
loops.  Per-batch similarity vectors likewise flow through
:func:`~repro.similarity.batch.batch_similarity_matrix` whenever
``config.use_batch_similarity`` is set (the default), exactly like the
one-shot resolver.

What carries over from the paper unchanged: the similarity vectors, the
grouping, the selector, and the error tolerance all operate per batch; the
cost advantage compounds because the old×old pairs are never revisited.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from ..crowd.platform import SimulatedCrowd
from ..crowd.worker import WorkerPool
from ..data.ground_truth import Pair, pair_truth, true_match_pairs
from ..data.table import Table
from ..exceptions import ConfigurationError, DataError
from ..graph.grouped_graph import build_graph
from ..similarity.batch import TokenIndex
from ..similarity.tokenize import qgram_tokens, word_tokens
from .clustering import clusters_from_matches
from .config import PowerConfig
from .metrics import QualityReport, pairwise_quality
from .resolver import PowerResolver


class IncrementalResolver:
    """Streaming entity resolution with persistent state.

    Args:
        attributes: the schema of the incoming records.
        config: pipeline configuration (same knobs as
            :class:`~repro.core.resolver.PowerResolver`).
        name: dataset name stored on the internal table.
        index_mode: ``"extend"`` (default) maintains the token index
            incrementally through :meth:`TokenIndex.extend` — O(new) work
            per batch; ``"rebuild"`` re-interns every record seen so far on
            each batch — the O(all) reference the streaming benchmark
            measures the extend path against.  Both produce bit-identical
            candidate sweeps.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        config: PowerConfig | None = None,
        name: str = "stream",
        index_mode: str = "extend",
    ) -> None:
        if index_mode not in ("extend", "rebuild"):
            raise ConfigurationError(
                f"index_mode must be 'extend' or 'rebuild', got {index_mode!r}"
            )
        self.config = config or PowerConfig()
        self.table = Table(name=name, attributes=tuple(attributes))
        self._resolver = PowerResolver(self.config)
        self._index: TokenIndex | None = None
        self.index_mode = index_mode
        self.labels: dict[Pair, bool] = {}
        self.total_questions = 0
        self.total_iterations = 0
        self.total_cost_cents = 0
        self.batches = 0

    # ------------------------------------------------------------------ #
    # Candidate generation (incremental similarity join)
    # ------------------------------------------------------------------ #

    def _tokenizer(self):
        return qgram_tokens if self.config.join_tokens == "qgram" else word_tokens

    def _rebuild_index(self) -> None:
        """Re-intern the packed token bit-matrix over every record so far.

        The original maintenance strategy, kept as the from-scratch
        reference: per batch it re-tokenizes all N records, so a K-batch
        stream pays O(K·N) interning — quadratic in the stream length.
        :meth:`_extend_index` replaces it on the hot path; the two are
        bit-identical (extend assigns the same unique-row and token ids the
        full rebuild would).
        """
        texts = [
            self.table.record_text(record_id)
            for record_id in range(len(self.table))
        ]
        self._index = TokenIndex(texts, self._tokenizer())

    def _extend_index(self, new_ids: Sequence[int]) -> None:
        """Fold just the new records into the live token index, O(new)."""
        if self._index is None:
            # First batch (or a restored resolver without its index): build
            # over everything seen so far, which the extends then grow.
            self._rebuild_index()
            return
        self._index.extend(
            [self.table.record_text(record_id) for record_id in new_ids]
        )

    def _candidates_for(self, record_id: int) -> list[Pair]:
        """Earlier records whose record-level Jaccard clears the threshold.

        One vectorized :meth:`TokenIndex.jaccard_pairs` sweep of the new
        record against all earlier records with a non-empty token set.
        Equivalent to the scalar inverted-list probe: with a positive
        pruning threshold, ``jaccard >= threshold`` already implies at
        least one shared token, and empty-token records (whose batch-path
        empty-vs-empty convention is 1.0) are excluded on both sides just
        as an empty record posts no tokens to an inverted index.
        """
        index = self._index
        assert index is not None  # _rebuild_index precedes any probe
        threshold = self.config.pruning_threshold
        sizes = index.sizes[index.row_of_text]
        if record_id == 0 or sizes[record_id] == 0:
            return []
        earlier = np.flatnonzero(sizes[:record_id] > 0)
        if earlier.size == 0:
            return []
        scores = index.jaccard_pairs(
            np.full(earlier.size, record_id, dtype=np.int64), earlier
        )
        return [(int(other), record_id) for other in earlier[scores >= threshold]]

    # ------------------------------------------------------------------ #
    # Streaming API
    # ------------------------------------------------------------------ #

    def add_batch(
        self,
        rows: Sequence[Sequence[str]],
        entity_ids: Sequence[int] | None = None,
        session=None,
        worker_band: str | tuple[float, float] = "90",
    ) -> dict:
        """Ingest a batch of records and resolve their pairs.

        Args:
            rows: new records' attribute values.
            entity_ids: ground truth for the new records (needed when no
                *session* is given, to build the simulated crowd).
            session: a crowd session covering the batch's candidate pairs;
                auto-built from ground truth when omitted.
            worker_band: accuracy band for the auto-built crowd.

        Returns:
            A batch report dict: new candidate pairs, questions, iterations,
            and the running cluster count.
        """
        if not rows:
            raise DataError("a batch must contain at least one record")
        if entity_ids is not None and len(entity_ids) != len(rows):
            raise DataError(
                f"{len(rows)} rows but {len(entity_ids)} entity ids"
            )
        new_ids = []
        for offset, row in enumerate(rows):
            entity = entity_ids[offset] if entity_ids is not None else None
            record = self.table.append(
                tuple(str(value) for value in row), entity_id=entity
            )
            new_ids.append(record.record_id)
        ingest_started = time.perf_counter()
        if self.index_mode == "rebuild":
            self._rebuild_index()
        else:
            self._extend_index(new_ids)
        index_seconds = time.perf_counter() - ingest_started

        pairs: list[Pair] = []
        for record_id in new_ids:
            pairs.extend(self._candidates_for(record_id))
        pairs = sorted(set(pairs))
        ingest_seconds = time.perf_counter() - ingest_started
        report = {
            "batch": self.batches + 1,
            "new_records": len(new_ids),
            "new_pairs": len(pairs),
            "questions": 0,
            "iterations": 0,
            "asked_pairs": [],
            "ingest_seconds": ingest_seconds,
            "index_seconds": index_seconds,
        }
        if pairs:
            vectors = self._batch_vectors(pairs)
            graph = build_graph(
                pairs,
                vectors,
                epsilon=self.config.epsilon,
                grouping_algorithm=self.config.grouping_algorithm,
            )
            if session is None:
                session = self._auto_session(pairs, worker_band)
            # Deltas, not totals: a long-lived session carries its asked set
            # and pooled bill across batches, so per-batch numbers are the
            # difference the batch made, and the accumulated totals equal
            # the session's own ledger.
            asked_before = session.asked_pairs
            iterations_before = session.iterations
            cost_before = session.cost_cents
            selector = self._resolver.make_selector()
            result = selector.run(graph, session)
            batch_asked = sorted(session.asked_pairs - asked_before)
            self.labels.update(result.labels)
            self.total_questions += len(batch_asked)
            self.total_iterations += session.iterations - iterations_before
            self.total_cost_cents += session.cost_cents - cost_before
            report["questions"] = len(batch_asked)
            report["iterations"] = session.iterations - iterations_before
            report["asked_pairs"] = batch_asked
        self.batches += 1
        report["clusters"] = len(self.clusters())
        return report

    def _batch_vectors(self, pairs: Sequence[Pair]) -> np.ndarray:
        """Similarity vectors for one batch's candidate pairs.

        Routed through ``batch_similarity_matrix`` when the config's
        ``use_batch_similarity`` is set (the default), scalar otherwise —
        the same dispatch the one-shot resolver uses.  Overridable: the
        streaming service reroutes large batches through the shard
        executor, which is bit-identical by the shard merge contract.
        """
        return self._resolver.similarity_vectors(self.table, pairs)

    def _auto_session(self, pairs: Sequence[Pair], worker_band):
        """A fresh simulated-crowd session over the batch's ground truth."""
        if not all(
            self.table[i].entity_id is not None for pair in pairs for i in pair
        ):
            raise ConfigurationError(
                "no session given and the batch lacks ground truth; "
                "provide a crowd session"
            )
        crowd = SimulatedCrowd(
            pair_truth(self.table, pairs),
            pool=WorkerPool(
                accuracy_range=worker_band, seed=self.config.seed
            ),
            assignments=self.config.assignments,
        )
        return crowd.session()

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    @property
    def matches(self) -> set[Pair]:
        return {pair for pair, same in self.labels.items() if same}

    def clusters(self) -> list[list[int]]:
        """Current entity clusters over every record seen so far."""
        return clusters_from_matches(len(self.table), self.matches)

    def quality(self) -> QualityReport:
        """Pairwise quality against the accumulated ground truth."""
        if not self.table.has_ground_truth():
            raise DataError("quality needs ground truth on every record")
        return pairwise_quality(self.matches, true_match_pairs(self.table))

    def summary(self) -> str:
        lines = [
            f"records seen     : {len(self.table)} in {self.batches} batches",
            f"pairs decided    : {len(self.labels)}",
            f"questions asked  : {self.total_questions}",
            f"crowd iterations : {self.total_iterations}",
            f"cost             : ${self.total_cost_cents / 100:.2f}",
            f"clusters         : {len(self.clusters())}",
        ]
        if self.table.has_ground_truth():
            lines.append(f"quality          : {self.quality()}")
        return "\n".join(lines)


def stream_in_batches(
    table: Table,
    batch_size: int,
    config: PowerConfig | None = None,
    worker_band: str | tuple[float, float] = "90",
) -> IncrementalResolver:
    """Convenience: feed an existing labeled table through the streaming API.

    Useful for experiments comparing one-shot and incremental resolution.
    """
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    resolver = IncrementalResolver(table.attributes, config=config, name=table.name)
    for start in range(0, len(table), batch_size):
        records = table.records[start : start + batch_size]
        resolver.add_batch(
            [record.values for record in records],
            entity_ids=[record.entity_id for record in records],
            worker_band=worker_band,
        )
    return resolver
