"""From pairwise match decisions to entity clusters.

The final deliverable of entity resolution is a partition of the records.
Matched pairs are treated as edges and clusters are the connected
components, computed with union-find.  ``clusters_to_matches`` is the
inverse (all within-cluster pairs), used to make cluster-level outputs
comparable under the pairwise metrics.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..baselines.union_find import UnionFind
from ..data.ground_truth import Pair, canonical_pair
from ..exceptions import DataError


def clusters_from_matches(num_records: int, matches: Iterable[Pair]) -> list[list[int]]:
    """Connected components of the match graph, as sorted member lists."""
    if num_records < 0:
        raise DataError(f"num_records must be >= 0, got {num_records}")
    sets = UnionFind(num_records)
    for i, j in matches:
        pair = canonical_pair(i, j)
        if pair[1] >= num_records:
            raise DataError(
                f"match {pair} references a record >= num_records ({num_records})"
            )
        sets.union(*pair)
    clusters = sorted(sets.clusters().values(), key=lambda members: members[0])
    return [sorted(members) for members in clusters]


def clusters_to_matches(clusters: Iterable[Iterable[int]]) -> set[Pair]:
    """All within-cluster record pairs (the transitive closure of matches)."""
    matches: set[Pair] = set()
    for cluster in clusters:
        members = sorted(cluster)
        for index, i in enumerate(members):
            for j in members[index + 1 :]:
                matches.add((i, j))
    return matches
