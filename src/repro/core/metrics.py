"""Evaluation metrics (paper §7.1).

Quality is pairwise: with ``S_T`` the gold same-entity pairs and ``S_P`` the
pairs an algorithm reports as matches, precision is ``|S_T ∩ S_P| / |S_P|``,
recall is ``|S_T ∩ S_P| / |S_T|``, and F-measure their harmonic mean.  Gold
pairs dropped by the similarity pruning still count against recall — the
pruning step's misses are part of every algorithm's score, exactly as in
the paper where all methods share the same pruned candidate set.
"""

from __future__ import annotations

from collections.abc import Iterable, Set
from dataclasses import dataclass

from ..data.ground_truth import Pair, canonical_pair


@dataclass(frozen=True)
class QualityReport:
    """Pairwise precision / recall / F-measure with the raw counts."""

    precision: float
    recall: float
    f_measure: float
    true_positives: int
    false_positives: int
    false_negatives: int

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f_measure:.3f} "
            f"(tp={self.true_positives} fp={self.false_positives} "
            f"fn={self.false_negatives})"
        )


def pairwise_quality(
    predicted_matches: Iterable[Pair], true_matches: Set[Pair]
) -> QualityReport:
    """Score a set of predicted match pairs against the gold match pairs.

    Pairs are canonicalised, so callers may pass them in either orientation.
    An empty prediction set scores precision 1 by convention (no false
    positives were asserted).
    """
    predicted = {canonical_pair(*pair) for pair in predicted_matches}
    gold = {canonical_pair(*pair) for pair in true_matches}
    true_positives = len(predicted & gold)
    false_positives = len(predicted - gold)
    false_negatives = len(gold - predicted)
    precision = true_positives / len(predicted) if predicted else 1.0
    recall = true_positives / len(gold) if gold else 1.0
    if precision + recall == 0:
        f_measure = 0.0
    else:
        f_measure = 2 * precision * recall / (precision + recall)
    return QualityReport(
        precision=precision,
        recall=recall,
        f_measure=f_measure,
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
    )
