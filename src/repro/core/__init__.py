"""Core pipeline: configuration, resolver, clustering, metrics."""

from .clustering import clusters_from_matches, clusters_to_matches
from .config import PowerConfig
from .incremental import IncrementalResolver, stream_in_batches
from .metrics import QualityReport, pairwise_quality
from .resolver import PowerResolver, ResolutionResult

__all__ = [
    "IncrementalResolver",
    "PowerConfig",
    "PowerResolver",
    "QualityReport",
    "ResolutionResult",
    "clusters_from_matches",
    "stream_in_batches",
    "clusters_to_matches",
    "pairwise_quality",
]
