"""End-to-end pipeline configuration for :class:`~repro.core.resolver.PowerResolver`."""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..selection.error_tolerant import ErrorPolicy


@dataclass(frozen=True)
class PowerConfig:
    """Every knob of the Power/Power+ pipeline, with the paper's defaults.

    Attributes:
        similarity: similarity function applied to every attribute
            (``"bigram"`` — §7.1 default — ``"jaccard"`` or ``"edit"``), or a
            tuple naming one function per attribute.
        attribute_threshold: per-attribute clamp ``tau`` (Table 2 uses 0.2).
        pruning_threshold: record-level Jaccard bound for candidate pairs
            (the paper uses 0.3 on ACMPub, 0.2 elsewhere).
        join_method: candidate-join strategy — ``"auto"`` (default; picks by
            table size, see
            :data:`repro.similarity.join.AUTO_PREFIX_CROSSOVER`), ``"naive"``,
            ``"prefix"``, or ``"sparse"``.  Lets the resolver force the prefix
            join (or the numpy inverted-list join) regardless of table size.
        join_tokens: token sets for the pruning join — ``"word"`` (default)
            or ``"qgram"``.
        use_batch_similarity: compute similarity vectors through the
            vectorized fast path
            (:func:`repro.similarity.batch.batch_similarity_matrix`; default)
            instead of the scalar reference.  Both produce bit-identical
            vectors; the knob exists for A/B verification and debugging.
        use_incremental_selection: run the selection loop through the
            incremental engine (warm-started path covers + packed-bitset
            propagation; default) instead of the per-round scratch
            reference.  Both produce byte-identical resolutions — same
            questions, same order, same coloring; the knob exists for A/B
            verification and debugging.
        reachability_index: size gate for the packed reachability index —
            ``"auto"`` (default byte budget), ``"off"`` (never build one;
            implies the scratch selection path), or a positive int byte
            budget.
        epsilon: grouping threshold; ``None`` disables grouping (§4.2's
            default in the experiments is 0.1).
        grouping_algorithm: ``"split"`` (Algorithm 2) or ``"greedy"``
            (Appendix A).
        selector: ``"power"`` (topological sorting — the paper's headline
            algorithm), ``"single-path"``, ``"multi-path"``, or ``"random"``.
        error_tolerant: run as Power+ — tolerate low-confidence answers and
            settle them with the §6 histogram step.
        confidence_threshold / num_bins / binning: the Power+ knobs.
        assignments: workers per question, ``z`` (paper: 5).
        seed: base seed for every stochastic component.
        shards: number of shard work units for
            :class:`~repro.shard.ShardedResolver` (``None`` → one per
            worker process).  In the exact mode this is the number of
            data-parallel slices (any value yields bit-identical results);
            in the independent mode it is the number of per-shard
            resolution loops.
        shard_max_pairs: size cap for the independent-mode partitioner —
            connected components of the candidate graph holding more pairs
            than this are split on their weakest edges (``None`` → an
            automatic ``ceil(pairs / shards)`` cap).
        shard_retries: re-submissions per failed shard task before the
            executor falls back to in-process execution.
        plan: cost-based planning of the pure-performance knobs —
            ``"off"`` (default: static heuristics), ``"auto"`` (plan from
            the host calibration profile when one exists, else the
            documented default coefficients), or a path to an explicit
            profile JSON (must load, fails loudly).  Planning never
            changes results — see ``check_plan_transparency`` in
            :mod:`repro.verify.oracles`.
    """

    similarity: str | tuple[str, ...] = "bigram"
    attribute_threshold: float = 0.2
    pruning_threshold: float = 0.2
    join_method: str = "auto"
    join_tokens: str = "word"
    use_batch_similarity: bool = True
    use_incremental_selection: bool = True
    reachability_index: str | int = "auto"
    epsilon: float | None = 0.1
    grouping_algorithm: str = "split"
    selector: str = "power"
    error_tolerant: bool = True
    confidence_threshold: float = 0.8
    num_bins: int = 20
    binning: str = "equi-depth"
    assignments: int = 5
    seed: int = 0
    shards: int | None = None
    shard_max_pairs: int | None = None
    shard_retries: int = 2
    plan: str = "off"

    def __post_init__(self) -> None:
        from ..similarity.join import JOIN_METHODS

        if not 0.0 < self.pruning_threshold <= 1.0:
            raise ConfigurationError(
                f"pruning_threshold must be in (0, 1], got {self.pruning_threshold}"
            )
        if self.join_method not in JOIN_METHODS:
            raise ConfigurationError(
                f"join_method must be one of {JOIN_METHODS}, got {self.join_method!r}"
            )
        if self.join_tokens not in ("word", "qgram"):
            raise ConfigurationError(
                f"join_tokens must be 'word' or 'qgram', got {self.join_tokens!r}"
            )
        if isinstance(self.reachability_index, str):
            if self.reachability_index not in ("auto", "off"):
                raise ConfigurationError(
                    "reachability_index must be 'auto', 'off', or a positive "
                    f"byte budget, got {self.reachability_index!r}"
                )
        elif not isinstance(self.reachability_index, int) or (
            self.reachability_index < 1
        ):
            raise ConfigurationError(
                "reachability_index must be 'auto', 'off', or a positive "
                f"byte budget, got {self.reachability_index!r}"
            )
        if self.epsilon is not None and self.epsilon < 0:
            raise ConfigurationError(f"epsilon must be >= 0, got {self.epsilon}")
        if self.assignments < 1:
            raise ConfigurationError(
                f"assignments must be >= 1, got {self.assignments}"
            )
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1 or None, got {self.shards}"
            )
        if self.shard_max_pairs is not None and self.shard_max_pairs < 1:
            raise ConfigurationError(
                f"shard_max_pairs must be >= 1 or None, got {self.shard_max_pairs}"
            )
        if self.shard_retries < 0:
            raise ConfigurationError(
                f"shard_retries must be >= 0, got {self.shard_retries}"
            )
        if not isinstance(self.plan, str) or not self.plan:
            raise ConfigurationError(
                "plan must be 'off', 'auto', or a profile path, "
                f"got {self.plan!r}"
            )

    def reachability_limit_bytes(self) -> int | None:
        """Byte budget for the reachability index (None = module default).

        ``"off"`` maps to 0 bytes, so no graph ever fits and the selection
        loop stays on the scratch reference paths.
        """
        if self.reachability_index == "auto":
            return None
        if self.reachability_index == "off":
            return 0
        return int(self.reachability_index)

    def error_policy(self) -> ErrorPolicy | None:
        """The Power+ policy object, or None when running plain Power."""
        if not self.error_tolerant:
            return None
        return ErrorPolicy(
            confidence_threshold=self.confidence_threshold,
            num_bins=self.num_bins,
            binning=self.binning,
        )
