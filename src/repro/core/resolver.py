"""The end-to-end Power/Power+ pipeline (the paper's full system).

:class:`PowerResolver` chains every stage the paper describes:

1. **Prune** — record-level similarity join keeps the candidate pairs
   (§7.1's pruning step).
2. **Vectorise** — per-attribute similarity vectors (§3.1).
3. **Group** — optional ε-grouping to shrink the graph (§4.2).
4. **Select & ask** — a question-selection algorithm colors the graph
   through a (simulated) crowd session (§5).
5. **Tolerate errors** — Power+ settles low-confidence answers with the
   histogram step (§6).
6. **Cluster** — matched pairs become entity clusters, and quality is
   scored when ground truth is available.

Example:
    >>> from repro import PowerResolver, PowerConfig, restaurant
    >>> result = PowerResolver(PowerConfig(seed=1)).resolve(restaurant())
    >>> result.quality.f_measure > 0.8
    True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..crowd.platform import CrowdSession, SimulatedCrowd

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.runtime import CrowdEngine
from ..crowd.worker import WorkerPool
from ..data.ground_truth import Pair, pair_truth, true_match_pairs
from ..data.table import Table
from ..exceptions import ConfigurationError, DataError
from ..graph.dag import OrderedGraph
from ..graph.grouped_graph import build_graph
from ..obs import instrument as obs_instrument
from ..selection import SELECTORS
from ..selection.base import SelectionResult
from ..similarity.batch import batch_similarity_matrix
from ..similarity.join import similar_pairs
from ..similarity.vectors import SimilarityConfig, similarity_matrix
from .clustering import clusters_from_matches
from .config import PowerConfig
from .metrics import QualityReport, pairwise_quality


@dataclass
class ResolutionResult:
    """Everything produced by one end-to-end resolution run.

    Attributes:
        table_name: which dataset was resolved.
        candidate_pairs: pairs that survived pruning.
        selection: the selector's run report (questions, iterations, ...).
        matches: pairs decided to refer to the same entity.
        clusters: the induced entity clusters (connected components).
        quality: pairwise P/R/F against ground truth (None if unavailable).
    """

    table_name: str
    candidate_pairs: list[Pair]
    selection: SelectionResult
    matches: set[Pair] = field(default_factory=set)
    clusters: list[list[int]] = field(default_factory=list)
    quality: QualityReport | None = None

    @property
    def questions(self) -> int:
        return self.selection.questions

    @property
    def iterations(self) -> int:
        return self.selection.iterations

    @property
    def cost_cents(self) -> int:
        return self.selection.cost_cents

    def summary(self) -> str:
        """A human-readable report of the run, for logs and notebooks."""
        duplicate_clusters = sum(1 for cluster in self.clusters if len(cluster) > 1)
        lines = [
            f"dataset          : {self.table_name}",
            f"candidate pairs  : {len(self.candidate_pairs)}",
            f"selector         : {self.selection.name}",
            f"questions asked  : {self.questions}",
            f"crowd iterations : {self.iterations}",
            f"cost             : ${self.cost_cents / 100:.2f}",
            f"clusters         : {len(self.clusters)} "
            f"({duplicate_clusters} with duplicates)",
        ]
        if self.quality is not None:
            lines.append(f"quality          : {self.quality}")
        return "\n".join(lines)


class PowerResolver:
    """The partial-order crowdsourced entity-resolution system.

    Args:
        config: pipeline configuration; defaults to the paper's setup
            (bigram similarity, split grouping with ε=0.1, topological
            question selection, error tolerance on).
    """

    def __init__(self, config: PowerConfig | None = None) -> None:
        self.config = config or PowerConfig()
        #: The cost-based plan behind the last planned :meth:`resolve`
        #: (``None`` when ``config.plan == "off"`` or before any run).
        self.last_plan = None

    # ------------------------------------------------------------------ #
    # Cost-based planning
    # ------------------------------------------------------------------ #

    #: Plannable-knob constraint for this resolver: the serial pipeline
    #: can use any join, including the global sparse one.
    _plan_allows_sparse = True

    def _planned_clone(self, table: Table):
        """``(resolver, plan)`` — ``(self, None)`` when planning is off.

        Builds the plan from the table's measured stats and the profile
        named by ``config.plan``, then clones this resolver with the
        planned config (``plan="off"`` on the clone, so it never
        re-plans).  ``apply_plan`` is resolved through the module at call
        time on purpose: the mutation self-test patches it there.
        """
        if self.config.plan == "off":
            return self, None
        import copy

        from ..plan import planner as plan_planner
        from ..plan.calibrate import resolve_profile

        profile = resolve_profile(self.config.plan)
        plan = plan_planner.plan_for_table(
            table,
            self.config,
            profile,
            workers=getattr(self, "workers", None),
            allow_sparse=self._plan_allows_sparse,
        )
        clone = copy.copy(self)
        clone.config = plan_planner.apply_plan(self.config, plan)
        return clone, plan

    # ------------------------------------------------------------------ #
    # Pipeline stages (each usable on its own)
    # ------------------------------------------------------------------ #

    def candidate_pairs(self, table: Table) -> list[Pair]:
        """Stage 1: record-level similarity pruning (§7.1)."""
        return similar_pairs(
            table,
            self.config.pruning_threshold,
            tokens=self.config.join_tokens,
            method=self.config.join_method,
        )

    def similarity_config(self, table: Table) -> SimilarityConfig:
        similarity = self.config.similarity
        if isinstance(similarity, str):
            return SimilarityConfig.uniform(
                table.num_attributes,
                function=similarity,
                attribute_threshold=self.config.attribute_threshold,
            )
        return SimilarityConfig(
            functions=tuple(similarity),
            attribute_threshold=self.config.attribute_threshold,
        ).for_table(table)

    def similarity_vectors(self, table: Table, pairs: list[Pair]):
        """Stage 2: per-attribute similarity vectors for *pairs*.

        Uses the vectorized batch substrate by default (bit-identical to the
        scalar reference; set ``use_batch_similarity=False`` to A/B it).
        """
        vectorize = (
            batch_similarity_matrix
            if self.config.use_batch_similarity
            else similarity_matrix
        )
        return vectorize(table, pairs, self.similarity_config(table))

    def build_graph(
        self, table: Table, pairs: list[Pair], vectors=None
    ) -> OrderedGraph:
        """Stages 2-3: similarity vectors and the (grouped) graph.

        Args:
            vectors: precomputed output of :meth:`similarity_vectors`;
                computed on demand when omitted.
        """
        if vectors is None:
            vectors = self.similarity_vectors(table, pairs)
        return build_graph(
            pairs,
            vectors,
            epsilon=self.config.epsilon,
            grouping_algorithm=self.config.grouping_algorithm,
        )

    def make_selector(self):
        try:
            selector_class = SELECTORS[self.config.selector]
        except KeyError:
            known = ", ".join(sorted(SELECTORS))
            raise ConfigurationError(
                f"unknown selector {self.config.selector!r}; known: {known}"
            ) from None
        return selector_class(
            error_policy=self.config.error_policy(),
            seed=self.config.seed,
            incremental=self.config.use_incremental_selection,
            reachability_bytes=self.config.reachability_limit_bytes(),
        )

    def simulated_crowd(
        self, table: Table, pairs: list[Pair], worker_band: str | tuple[float, float] = "90"
    ) -> SimulatedCrowd:
        """Build a simulated crowd from the table's ground truth."""
        if not table.has_ground_truth():
            raise DataError(
                f"table {table.name!r} has no ground truth; pass a crowd session "
                "backed by real answers instead"
            )
        return SimulatedCrowd(
            pair_truth(table, pairs),
            pool=WorkerPool(accuracy_range=worker_band, seed=self.config.seed),
            assignments=self.config.assignments,
        )

    # ------------------------------------------------------------------ #
    # End to end
    # ------------------------------------------------------------------ #

    def resolve(
        self,
        table: Table,
        session: CrowdSession | None = None,
        worker_band: str | tuple[float, float] = "90",
        engine: "CrowdEngine | None" = None,
    ) -> ResolutionResult:
        """Run the full pipeline on *table*.

        Args:
            table: records to resolve.
            session: a crowd session to ask; when omitted, a simulated crowd
                is built from the table's ground truth.
            worker_band: accuracy band for the auto-built simulated crowd
                (ignored when *session* is given).
            engine: a :class:`repro.engine.CrowdEngine`; when given (and no
                explicit *session*), selection rounds are posted through the
                engine's event-driven platform — faults, retries, budget
                guardrails, journaling and simulated wall clock included.
                With a fault-free profile and no budget caps this path is
                byte-identical to the synchronous one.
        """
        if engine is not None and session is not None:
            raise ConfigurationError(
                "pass either an explicit session or an engine, not both "
                "(build the session via engine.session(...) yourself instead)"
            )
        planned, plan = self._planned_clone(table)
        if plan is not None:
            result = planned.resolve(table, session, worker_band, engine)
            self.last_plan = plan
            result.selection.extras["plan"] = plan.to_payload()
            return result
        obs = obs_instrument.current()
        tracer = obs.tracer
        with tracer.span(
            "resolve", dataset=table.name, selector=self.config.selector
        ) as resolve_span:
            started = time.perf_counter()
            with tracer.span("resolve.join"):
                pairs = self.candidate_pairs(table)
            obs_instrument.record_stage_seconds(
                obs, "join", time.perf_counter() - started, dataset=table.name
            )
            if not pairs:
                raise DataError(
                    f"no candidate pairs survive pruning at threshold "
                    f"{self.config.pruning_threshold} on table {table.name!r}"
                )
            started = time.perf_counter()
            with tracer.span("resolve.vectorize", pairs=len(pairs)):
                vectors = self.similarity_vectors(table, pairs)
            obs_instrument.record_stage_seconds(
                obs, "vectorize", time.perf_counter() - started, dataset=table.name
            )
            started = time.perf_counter()
            with tracer.span("resolve.construct") as construct_span:
                graph = self.build_graph(table, pairs, vectors=vectors)
                construct_span.set_attribute("vertices", len(graph))
            obs_instrument.record_stage_seconds(
                obs, "construct", time.perf_counter() - started, dataset=table.name
            )
            if session is None:
                crowd = self.simulated_crowd(table, pairs, worker_band)
                if engine is not None:
                    scores = vectors.mean(axis=1)
                    session = engine.session(
                        crowd,
                        machine_scores={
                            pair: float(score) for pair, score in zip(pairs, scores)
                        },
                    )
                else:
                    session = crowd.session()
            started = time.perf_counter()
            selection = self.make_selector().run(graph, session)
            obs_instrument.record_stage_seconds(
                obs, "select", time.perf_counter() - started, dataset=table.name
            )
            if engine is not None:
                engine.finalize(session)
                selection.extras["telemetry"] = engine.telemetry.as_dict()
                selection.extras["wall_clock_seconds"] = engine.wall_clock_seconds
                selection.extras["batch_sizes"] = list(session.batch_sizes)
            started = time.perf_counter()
            with tracer.span("resolve.cluster"):
                matches = selection.matches
                clusters = clusters_from_matches(len(table), matches)
                quality = None
                if table.has_ground_truth():
                    quality = pairwise_quality(matches, true_match_pairs(table))
            obs_instrument.record_stage_seconds(
                obs, "cluster", time.perf_counter() - started, dataset=table.name
            )
            if obs.metrics:
                registry = obs.registry
                registry.counter(
                    "repro_resolve_runs_total",
                    "end-to-end resolution runs",
                    dataset=table.name,
                ).inc()
                registry.gauge(
                    "repro_resolve_candidate_pairs",
                    "pairs surviving the pruning join in the last run",
                    dataset=table.name,
                ).set(len(pairs))
                registry.gauge(
                    "repro_resolve_questions",
                    "crowd questions asked in the last run",
                    dataset=table.name,
                ).set(selection.questions)
                registry.gauge(
                    "repro_resolve_cost_cents",
                    "crowd cost of the last run",
                    dataset=table.name,
                ).set(selection.cost_cents)
            resolve_span.set_attribute("questions", selection.questions)
            resolve_span.set_attribute("clusters", len(clusters))
        return ResolutionResult(
            table_name=table.name,
            candidate_pairs=pairs,
            selection=selection,
            matches=matches,
            clusters=clusters,
            quality=quality,
        )
