"""Hierarchical tracing: spans, the tracer, and cross-process grafting.

A **span** is one timed region of the pipeline — a resolve stage, a crowd
round, a shard task — carrying wall and CPU durations, arbitrary
attributes, an ok/error status, and child spans.  A **tracer** hands out
spans through a context manager (or decorator), maintaining a per-thread
stack so nesting falls out of lexical structure:

    with tracer.span("resolve", dataset="restaurant"):
        with tracer.span("resolve.join"):
            ...

Three properties matter for the rest of the repo:

* **near-zero cost when disabled** — a disabled tracer returns one shared
  no-op context manager; the hot paths pay an attribute check and a call.
* **thread safety** — each thread has its own span stack (a root started
  on a worker thread becomes its own trace root, tagged with the thread
  name); finished roots land in one ordered list under a lock.
* **deterministic cross-process grafting** — shard workers trace into
  their own tracer, export plain dicts, and the coordinator grafts them
  back with :meth:`Tracer.graft` *in task order*, so the merged trace is
  identical regardless of worker completion order (asserted by the shard
  battery test).  Span ids are assigned at export time by pre-order
  numbering — content-determined, not allocation-determined.

Transparency contract: spans never touch the objects they observe.  The
``check_observability_transparent`` battery step runs the pipeline with
tracing on and off and demands byte-identical results; the
``obs-perturbs-selection`` mutant proves that check has teeth.
"""

from __future__ import annotations

import functools
import threading
from typing import Any, Callable

from ..exceptions import ObservabilityError
from .clock import SYSTEM_CLOCK


class Span:
    """One timed, attributed, nestable region of work."""

    __slots__ = (
        "name", "attributes", "children", "status", "error",
        "start_wall", "start_cpu", "wall_seconds", "cpu_seconds", "thread",
    )

    def __init__(self, name: str, attributes: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attributes = dict(attributes or {})
        self.children: list[Span] = []
        self.status = "ok"
        self.error: str | None = None
        self.start_wall = 0.0
        self.start_cpu = 0.0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.thread: str | None = None

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> dict:
        """Nested JSON-ready form (used for cross-process export)."""
        payload: dict[str, Any] = {
            "name": self.name,
            "wall_seconds": round(self.wall_seconds, 9),
            "cpu_seconds": round(self.cpu_seconds, 9),
            "status": self.status,
        }
        if self.error:
            payload["error"] = self.error
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.thread:
            payload["thread"] = self.thread
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls(payload["name"], payload.get("attributes"))
        span.wall_seconds = float(payload.get("wall_seconds", 0.0))
        span.cpu_seconds = float(payload.get("cpu_seconds", 0.0))
        span.status = payload.get("status", "ok")
        span.error = payload.get("error")
        span.thread = payload.get("thread")
        span.children = [cls.from_dict(child) for child in payload.get("children", [])]
        return span


class _NullSpanContext:
    """The shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None


NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager that opens *span* on enter and seals it on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc_type is not None:
            self.span.status = "error"
            self.span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self.span)
        return None  # never swallow the exception


class Tracer:
    """Span factory with a per-thread stack and an ordered root list."""

    def __init__(self, enabled: bool = True, clock=None) -> None:
        self.enabled = enabled
        self.clock = clock or SYSTEM_CLOCK
        self._local = threading.local()
        self._roots: list[Span] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes: Any):
        """Open a span context; a no-op singleton when tracing is off."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(name, attributes)
        return _SpanContext(self, span)

    def trace(self, name: str | None = None) -> Callable:
        """Decorator form: trace every call of the wrapped function."""

        def decorate(function: Callable) -> Callable:
            span_name = name or function.__qualname__

            @functools.wraps(function)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return function(*args, **kwargs)

            return wrapper

        return decorate

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = self._stack()
        span.start_wall = self.clock.wall()
        span.start_cpu = self.clock.cpu()
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise ObservabilityError(
                f"span stack corrupted: closing {span.name!r} but the stack "
                f"top is {stack[-1].name if stack else None!r}"
            )
        stack.pop()
        span.wall_seconds = self.clock.wall() - span.start_wall
        span.cpu_seconds = self.clock.cpu() - span.start_cpu
        if stack:
            stack[-1].children.append(span)
        else:
            thread = threading.current_thread()
            if thread is not threading.main_thread():
                span.thread = thread.name
            with self._lock:
                self._roots.append(span)

    # ------------------------------------------------------------------ #
    # Cross-process grafting and export
    # ------------------------------------------------------------------ #

    def graft(self, exported: list[dict], **attributes: Any) -> None:
        """Attach worker-exported span dicts under the current span.

        Call in a deterministic order (task index, not completion order):
        grafting appends, so the merged trace's structure is exactly the
        call order.  With no open span the grafts become roots.
        """
        if not self.enabled:
            return
        spans = [Span.from_dict(payload) for payload in exported]
        for span in spans:
            span.attributes.update(attributes)
        parent = self.current()
        if parent is not None:
            parent.children.extend(spans)
        else:
            with self._lock:
                self._roots.extend(spans)

    def export(self) -> list[dict]:
        """Finished root spans as nested dicts, in finish order."""
        with self._lock:
            return [span.to_dict() for span in self._roots]

    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()


def walk(spans: list[dict], depth: int = 0):
    """Pre-order ``(depth, span_dict)`` iteration over exported spans."""
    for span in spans:
        yield depth, span
        yield from walk(span.get("children", []), depth + 1)


def structure(spans: list[dict]) -> list[tuple[int, str]]:
    """The timing-free shape of a trace: ``(depth, name)`` in pre-order.

    Two traces of the same run must have equal structures no matter how
    workers were scheduled — the shard determinism tests compare these.
    """
    return [(depth, span["name"]) for depth, span in walk(spans)]


__all__ = ["NULL_SPAN", "Span", "Tracer", "structure", "walk"]
