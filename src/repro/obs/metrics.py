"""The metrics registry: counters, gauges, and mergeable histograms.

One :class:`MetricsRegistry` holds every number the pipeline exports —
per-stage timings, question/billing counters, round-size distributions —
keyed by ``(kind, name, sorted labels)`` so the same metric name can carry
per-dataset or per-selector breakdowns as a *labeled family* (the
Prometheus data model).

The design constraint that shapes everything here is the **shard merge**:
:class:`~repro.shard.ShardedResolver` workers each record into their own
registry, and the coordinator folds them together in whatever order tasks
happen to complete.  Exported values must not depend on that order, so
every metric type defines an **associative, commutative** :meth:`merge`:

* :class:`Counter` — addition;
* :class:`Histogram` — bucket-wise addition (requires identical
  boundaries; merging is then exactly "observe the concatenated stream");
* :class:`Gauge` — *maximum*.  A gauge is a last-write-wins instrument and
  has no order-free sum; ``max`` is the associative/commutative choice
  that keeps high-water readings (peak memory, final clock) meaningful
  across shards.  Gauges that need other semantics should be counters.

Property tests in ``tests/test_obs_metrics.py`` pin the merge laws
(associativity, commutativity, identity) and the bucketing contract.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable

from ..exceptions import ObservabilityError

#: Default bucket boundaries for *seconds* histograms: sub-millisecond to
#: minutes, roughly geometric — wide enough for a join stage and a full
#: crowd round alike.
SECONDS_BOUNDARIES: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

#: Default boundaries for *count* histograms (batch sizes, pairs per round).
COUNT_BOUNDARIES: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000, 10000,
)

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total; merge is addition."""

    kind = "counter"
    __slots__ = ("name", "description", "labels", "value")

    def __init__(self, name: str, description: str = "", labels: LabelItems = ()) -> None:
        self.name = name
        self.description = description
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> dict:
        value = self.value
        return {"value": int(value) if value == int(value) else value}


class Gauge:
    """A point-in-time reading; merge keeps the maximum (see module doc)."""

    kind = "gauge"
    __slots__ = ("name", "description", "labels", "value")

    def __init__(self, name: str, description: str = "", labels: LabelItems = ()) -> None:
        self.name = name
        self.description = description
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)

    def as_dict(self) -> dict:
        value = self.value
        return {"value": int(value) if value == int(value) else value}


class Histogram:
    """Fixed-boundary cumulative-style histogram with exact order-free merge.

    ``boundaries`` are the *upper edges* of the finite buckets; an
    observation ``v`` lands in the first bucket whose edge satisfies
    ``v <= edge`` (``bisect_left`` over the sorted edges), and anything
    above the last edge lands in the overflow bucket, so there are
    ``len(boundaries) + 1`` buckets and every observation lands in exactly
    one.  ``sum``/``count``/``min``/``max`` ride along so exporters can
    report averages and extremes without raw samples.
    """

    kind = "histogram"
    __slots__ = (
        "name", "description", "labels", "boundaries", "bucket_counts",
        "count", "sum", "min", "max",
    )

    def __init__(
        self,
        name: str,
        description: str = "",
        labels: LabelItems = (),
        boundaries: Iterable[float] = SECONDS_BOUNDARIES,
    ) -> None:
        edges = tuple(float(edge) for edge in boundaries)
        if not edges:
            raise ObservabilityError(f"histogram {name!r} needs >= 1 boundary")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ObservabilityError(
                f"histogram {name!r} boundaries must be strictly increasing: {edges}"
            )
        self.name = name
        self.description = description
        self.labels = labels
        self.boundaries = edges
        self.bucket_counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        if other.boundaries != self.boundaries:
            raise ObservabilityError(
                f"cannot merge histogram {self.name!r}: boundary mismatch "
                f"({self.boundaries} vs {other.boundaries})"
            )
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        payload = {
            "count": self.count,
            "sum": round(self.sum, 9),
            "boundaries": list(self.boundaries),
            "buckets": list(self.bucket_counts),
        }
        if self.count:
            payload["min"] = self.min
            payload["max"] = self.max
            payload["mean"] = round(self.mean, 9)
        return payload


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A process-local family of named, labeled metrics.

    Accessors are get-or-create: asking for the same ``(name, labels)``
    twice returns the same instrument, so call sites never pre-register.
    Re-using a name with a different *kind* is an error — a family has one
    type.  Creation is lock-protected (shard worker threads, the engine's
    callbacks); single-instrument updates are plain attribute arithmetic,
    safe under the GIL for the increment granularity we record at.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelItems], Metric] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._metrics)

    # Shard workers pickle their registry back to the coordinator; the
    # lock is process-local state and is recreated on unpickle.
    def __getstate__(self) -> dict:
        return {"_metrics": self._metrics}

    def __setstate__(self, state: dict) -> None:
        self._metrics = state["_metrics"]
        self._lock = threading.Lock()

    def _get_or_create(self, factory, name: str, description: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, description, key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, factory):
                raise ObservabilityError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {factory.kind}"
                )
            return metric

    def counter(self, name: str, description: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, description, labels)

    def gauge(self, name: str, description: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, description, labels)

    def histogram(
        self,
        name: str,
        description: str = "",
        boundaries: Iterable[float] = SECONDS_BOUNDARIES,
        **labels: str,
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, description, labels, boundaries=boundaries
        )
        if metric.boundaries != tuple(float(b) for b in boundaries):
            raise ObservabilityError(
                f"histogram {name!r} re-requested with different boundaries"
            )
        return metric

    # ------------------------------------------------------------------ #
    # Merge and export
    # ------------------------------------------------------------------ #

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other* into this registry (associative and commutative).

        Metrics present on one side only are copied; shared keys merge per
        the type's law.  Shard-order independence of the merged snapshot is
        property-tested in ``tests/test_obs_metrics.py``.
        """
        with other._lock:
            items = list(other._metrics.items())
        for key, metric in items:
            name, labels = key
            absent = key not in self._metrics
            if isinstance(metric, Counter):
                mine = self.counter(name, metric.description, **dict(labels))
            elif isinstance(metric, Gauge):
                mine = self.gauge(name, metric.description, **dict(labels))
            else:
                mine = self.histogram(
                    name, metric.description, boundaries=metric.boundaries,
                    **dict(labels),
                )
            if absent and isinstance(metric, Gauge):
                # A copy, not a merge: folding through a fresh gauge's 0.0
                # would clamp negative readings (max-merge) and break the
                # empty registry's identity law.
                mine.value = metric.value
            else:
                mine.merge(metric)

    def metrics(self) -> list[Metric]:
        """Every instrument, deterministically ordered by (name, labels)."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def family(self, name: str) -> list[Metric]:
        """Every labeled member of one metric name, label-sorted."""
        return [m for m in self.metrics() if m.name == name]

    def snapshot(self) -> dict:
        """A deterministic, JSON-ready view of every metric."""
        out: dict = {}
        for metric in self.metrics():
            entry = {"kind": metric.kind, **metric.as_dict()}
            if metric.labels:
                entry["labels"] = dict(metric.labels)
            out.setdefault(metric.name, []).append(entry)
        return out


__all__ = [
    "COUNT_BOUNDARIES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SECONDS_BOUNDARIES",
]
