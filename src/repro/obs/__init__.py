"""repro.obs — unified tracing, metrics, and profiling for the pipeline.

One observability substrate for everything the repo runs: the resolver
stages (join → construct → select → aggregate → cluster), both path-cover
selectors, the sharded resolver and its executor, the discrete-event crowd
engine, and the batch-similarity join.  The pieces:

* :mod:`~repro.obs.trace` — hierarchical spans with wall/CPU durations,
  per-thread stacks, and deterministic cross-process grafting for shard
  workers.
* :mod:`~repro.obs.metrics` — counters, gauges, and fixed-boundary
  histograms in a registry whose merge is associative and commutative, so
  shard metrics fold together in any order.
* :mod:`~repro.obs.export` — JSONL trace files (``repro trace`` renders
  them), Prometheus text exposition, and console summaries.
* :mod:`~repro.obs.profiler` — an opt-in ``ITIMER_PROF`` sampling
  profiler for hot-path attribution.
* :mod:`~repro.obs.instrument` — the process-global
  :class:`Observability` handle, :func:`activated`, and the hook
  functions the pipeline calls.
* :mod:`~repro.obs.telemetry` — the engine's :class:`Telemetry`,
  re-hosted on the shared registry (``repro.engine.telemetry`` remains a
  deprecation shim).

Everything is off by default and provably transparent when on: the
``check_observability_transparent`` battery step demands byte-identical
resolution results with instrumentation enabled and disabled.

Quick start::

    from repro.obs import Observability, activated

    with activated(Observability()) as obs:
        result = resolver.resolve(table)
    print(render_trace(obs.tracer.export()))
"""

from .clock import ManualClock, MonotonicClock, SYSTEM_CLOCK
from .export import (
    TRACE_VERSION,
    read_trace,
    render_metrics,
    render_trace,
    to_prometheus,
    trace_records,
    write_metrics,
    write_trace,
)
from .instrument import (
    DISABLED,
    Observability,
    activated,
    current,
    observe_round,
    record_executor_stats,
    record_selection_metrics,
    record_stage_seconds,
)
from .metrics import (
    COUNT_BOUNDARIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SECONDS_BOUNDARIES,
)
from .profiler import SamplingProfiler
from .telemetry import Telemetry
from .trace import NULL_SPAN, Span, Tracer, structure, walk

__all__ = [
    "COUNT_BOUNDARIES",
    "DISABLED",
    "Counter",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "MonotonicClock",
    "NULL_SPAN",
    "Observability",
    "SECONDS_BOUNDARIES",
    "SYSTEM_CLOCK",
    "SamplingProfiler",
    "Span",
    "TRACE_VERSION",
    "Telemetry",
    "Tracer",
    "activated",
    "current",
    "observe_round",
    "read_trace",
    "record_executor_stats",
    "record_selection_metrics",
    "record_stage_seconds",
    "render_metrics",
    "render_trace",
    "structure",
    "to_prometheus",
    "trace_records",
    "walk",
    "write_metrics",
    "write_trace",
]
