"""Injectable time sources for the observability subsystem.

Every span and profiler sample in :mod:`repro.obs` reads time through a
:class:`Clock` instead of calling :func:`time.perf_counter` directly, for
two reasons:

* **testability** — :class:`ManualClock` lets tests assert exact span
  durations and CPU attributions without sleeping or tolerances;
* **dual time bases** — a span carries both a *wall* duration (what the
  user waits for) and a *CPU* duration (what the process burned), and the
  split between them is the first thing to look at when a stage is slow:
  ``wall >> cpu`` means blocking (I/O, pool scheduling, lock contention),
  ``wall ≈ cpu`` means compute.

:data:`SYSTEM_CLOCK` is the shared default; it is stateless, so one
instance serves every tracer in the process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


class MonotonicClock:
    """The production clock: monotonic wall time plus process CPU time."""

    __slots__ = ()

    def wall(self) -> float:
        """Monotonic wall-clock seconds (never goes backwards)."""
        return time.perf_counter()

    def cpu(self) -> float:
        """Process-wide CPU seconds (user + system)."""
        return time.process_time()


@dataclass
class ManualClock:
    """A hand-cranked clock for deterministic tests.

    Attributes:
        wall_now: current wall reading returned by :meth:`wall`.
        cpu_now: current CPU reading returned by :meth:`cpu`.
    """

    wall_now: float = 0.0
    cpu_now: float = 0.0

    def wall(self) -> float:
        return self.wall_now

    def cpu(self) -> float:
        return self.cpu_now

    def advance(self, wall: float, cpu: float | None = None) -> None:
        """Move time forward; *cpu* defaults to advancing with the wall."""
        self.wall_now += wall
        self.cpu_now += wall if cpu is None else cpu


#: Shared stateless default clock.
SYSTEM_CLOCK = MonotonicClock()

__all__ = ["ManualClock", "MonotonicClock", "SYSTEM_CLOCK"]
