"""Exporters: JSONL traces, Prometheus text, and console summaries.

Three audiences, three formats:

* **JSONL traces** — one span per line with pre-order ids, written next to
  the engine journal (same append-friendly shape, same tooling).  The
  flat-with-parent-pointers layout keeps huge traces streamable; the
  reader rebuilds the nested form for rendering.
* **Prometheus text exposition** — counters, gauges, and histograms in the
  standard ``# HELP`` / ``# TYPE`` format (histograms as cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``), so a scrape target
  or pushgateway can ingest a run's metrics unchanged.
* **console** — the human ``repro trace`` view: an indented span tree with
  wall/CPU durations and a metric table.

``write_metrics`` picks the format from the file suffix: ``.prom`` /
``.txt`` write the exposition format, anything else writes the registry's
JSON snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import ObservabilityError
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import walk

TRACE_VERSION = 1


# --------------------------------------------------------------------------- #
# Traces
# --------------------------------------------------------------------------- #


def trace_records(spans: list[dict]) -> list[dict]:
    """Flatten nested span dicts into id/parent records (pre-order ids)."""
    records: list[dict] = []

    def emit(span: dict, parent: int | None) -> None:
        span_id = len(records)
        flat = {k: v for k, v in span.items() if k != "children"}
        records.append({"id": span_id, "parent": parent, **flat})
        for child in span.get("children", []):
            emit(child, span_id)

    for span in spans:
        emit(span, None)
    return records


def write_trace(spans: list[dict], path: str | Path) -> Path:
    """Write a trace as JSONL: a header line, then one span per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"type": "header", "version": TRACE_VERSION}) + "\n")
        for record in trace_records(spans):
            handle.write(json.dumps({"type": "span", **record}) + "\n")
    return path


def read_trace(path: str | Path) -> list[dict]:
    """Rebuild the nested span dicts from a JSONL trace file."""
    path = Path(path)
    lines = [line for line in path.read_text(encoding="utf-8").splitlines() if line]
    if not lines:
        raise ObservabilityError(f"trace file {path} is empty")
    header = json.loads(lines[0])
    if header.get("type") != "header" or header.get("version") != TRACE_VERSION:
        raise ObservabilityError(
            f"trace file {path} has no recognizable header: {lines[0][:80]}"
        )
    by_id: dict[int, dict] = {}
    roots: list[dict] = []
    for line in lines[1:]:
        record = json.loads(line)
        if record.get("type") != "span":
            continue
        span = {k: v for k, v in record.items() if k not in ("type", "id", "parent")}
        span["children"] = []
        by_id[record["id"]] = span
        parent = record["parent"]
        if parent is None:
            roots.append(span)
        else:
            by_id[parent]["children"].append(span)
    for span in by_id.values():
        if not span["children"]:
            del span["children"]
    return roots


def render_trace(
    spans: list[dict], max_depth: int | None = None, min_seconds: float = 0.0
) -> str:
    """The indented human view of a trace (the ``repro trace`` output)."""
    lines = []
    for depth, span in walk(spans):
        if max_depth is not None and depth > max_depth:
            continue
        wall = span.get("wall_seconds", 0.0)
        if depth and wall < min_seconds:
            continue
        cpu = span.get("cpu_seconds", 0.0)
        marker = "" if span.get("status", "ok") == "ok" else "  !! " + span.get(
            "error", "error"
        )
        attrs = span.get("attributes") or {}
        rendered_attrs = (
            " [" + " ".join(f"{k}={attrs[k]}" for k in sorted(attrs)) + "]"
            if attrs
            else ""
        )
        lines.append(
            f"{'  ' * depth}{span['name']:<{max(1, 40 - 2 * depth)}} "
            f"{wall * 1000:>9.2f} ms  cpu {cpu * 1000:>8.2f} ms"
            f"{rendered_attrs}{marker}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_labels(labels, extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (sorted, stable)."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric in registry.metrics():
        name = _prom_name(metric.name)
        if name not in seen_headers:
            seen_headers.add(name)
            if metric.description:
                lines.append(f"# HELP {name} {metric.description}")
            lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{name}{_prom_labels(metric.labels)} {_prom_value(metric.value)}")
        elif isinstance(metric, Histogram):
            cumulative = 0
            for edge, count in zip(metric.boundaries, metric.bucket_counts):
                cumulative += count
                le = 'le="%s"' % _prom_value(edge)
                lines.append(
                    f"{name}_bucket{_prom_labels(metric.labels, le)} {cumulative}"
                )
            inf_labels = _prom_labels(metric.labels, 'le="+Inf"')
            lines.append(f"{name}_bucket{inf_labels} {metric.count}")
            lines.append(
                f"{name}_sum{_prom_labels(metric.labels)} {_prom_value(metric.sum)}"
            )
            lines.append(
                f"{name}_count{_prom_labels(metric.labels)} {metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write metrics; ``.prom``/``.txt`` → exposition text, else JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix in (".prom", ".txt"):
        path.write_text(to_prometheus(registry), encoding="utf-8")
    else:
        path.write_text(
            json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return path


def render_metrics(registry: MetricsRegistry) -> str:
    """A compact console table of every metric in the registry."""
    lines = []
    for metric in registry.metrics():
        label = metric.name + (
            "{" + ",".join(f"{k}={v}" for k, v in metric.labels) + "}"
            if metric.labels
            else ""
        )
        if isinstance(metric, Histogram):
            if metric.count:
                detail = (
                    f"count={metric.count} mean={metric.mean:.4g} "
                    f"min={metric.min:.4g} max={metric.max:.4g}"
                )
            else:
                detail = "count=0"
            lines.append(f"  {label:<52} {detail}")
        else:
            lines.append(f"  {label:<52} {_prom_value(metric.value)}")
    return "\n".join(lines)


__all__ = [
    "TRACE_VERSION",
    "read_trace",
    "render_metrics",
    "render_trace",
    "to_prometheus",
    "trace_records",
    "write_metrics",
    "write_trace",
]
