"""Engine telemetry, re-hosted on the shared :mod:`repro.obs` registry.

Historically :class:`Telemetry` was a plain dataclass of counters private
to the engine; it is now a *view* over :class:`~repro.obs.metrics.MetricsRegistry`
instruments (``repro_engine_*`` namespace), so an engine run's counters
appear in the same Prometheus/JSON exports as the pipeline's stage timings
and the selectors' round metrics — one observability substrate instead of
three ad-hoc formats.

The migration is behaviour-preserving by contract:

* every field keeps its name, type, and read/write attribute semantics
  (``telemetry.posted += 1`` and ``telemetry.billed_cents = 50`` both
  work, backed by registry instruments);
* :meth:`as_dict`, :meth:`write`, and :meth:`summary` produce **the exact
  bytes** the pre-migration dataclass produced (pinned by the regression
  test in ``tests/test_obs_integration.py``), so journal-adjacent
  ``*.telemetry.json`` artifacts and the ``extension-faults`` experiment
  output are unchanged;
* ``repro.engine.telemetry`` remains importable as a deprecation shim.

Pass a shared *registry* (the active :class:`~repro.obs.Observability`'s)
to fold an engine run into a unified export; the default private registry
keeps standalone engines isolated from each other.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any

from .metrics import MetricsRegistry

#: Counter fields (integer, monotone) in their canonical ``as_dict`` order.
COUNTER_FIELDS: tuple[str, ...] = (
    "posted",
    "assigned",
    "answered_units",
    "answered_pairs",
    "expired",
    "abandoned",
    "re_posts",
    "failed_units",
    "machine_answers",
    "spam_hijacked",
    "rounds",
)

#: Gauge fields (point-in-time readings assigned by the engine).
GAUGE_FIELDS: tuple[str, ...] = (
    "wall_clock_seconds",
    "repost_cents",
    "billed_cents",
)

_FIELD_HELP = {
    "posted": "assignment attempts posted (first posts + re-posts)",
    "assigned": "assignments claimed by a worker",
    "answered_units": "assignments submitted successfully",
    "answered_pairs": "questions whose aggregated answer was resolved",
    "expired": "assignments that timed out unclaimed",
    "abandoned": "assignments claimed but never submitted",
    "re_posts": "retry attempts (posted minus first posts)",
    "failed_units": "assignments that exhausted their retry budget",
    "machine_answers": "pairs settled by the machine fallback",
    "spam_hijacked": "pairs whose aggregated answer a spam burst replaced",
    "rounds": "crowd batches posted",
    "wall_clock_seconds": "final simulated wall clock of the run",
    "repost_cents": "money burned re-posting failed assignments",
    "billed_cents": "the session's distinct-question bill",
}

#: Fields whose attribute reads must stay ``int`` (pre-migration types).
_INT_FIELDS = frozenset(COUNTER_FIELDS) | {"billed_cents"}


class Telemetry:
    """Counters and recent events for one engine run (registry-backed).

    Args:
        event_log_limit: how many recent events to retain.
        registry: record into this shared registry instead of a private
            one — how an engine run joins the unified obs export.

    Every counter/gauge field of the pre-migration dataclass (``posted``,
    ``assigned``, ``answered_units``, ``answered_pairs``, ``expired``,
    ``abandoned``, ``re_posts``, ``failed_units``, ``machine_answers``,
    ``spam_hijacked``, ``rounds``, ``wall_clock_seconds``,
    ``repost_cents``, ``billed_cents``) remains a plain read/write
    attribute; reads and writes go straight to the backing instrument.
    """

    def __init__(
        self, event_log_limit: int = 1000, registry: MetricsRegistry | None = None
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.event_log_limit = int(event_log_limit)
        self._events: deque = deque()
        metrics = {}
        for name in COUNTER_FIELDS:
            metrics[name] = self.registry.counter(
                f"repro_engine_{name}_total", _FIELD_HELP[name]
            )
        for name in GAUGE_FIELDS:
            metrics[name] = self.registry.gauge(
                f"repro_engine_{name}", _FIELD_HELP[name]
            )
        self._metrics = metrics

    # ------------------------------------------------------------------ #
    # Field access (attribute semantics of the old dataclass)
    # ------------------------------------------------------------------ #

    def __getattr__(self, name: str):
        metrics = self.__dict__.get("_metrics")
        if metrics is not None and name in metrics:
            value = metrics[name].value
            return int(value) if name in _INT_FIELDS else value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        metrics = self.__dict__.get("_metrics")
        if metrics is not None and name in metrics:
            metrics[name].value = float(value)
        else:
            object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Events and derived views (unchanged from the dataclass era)
    # ------------------------------------------------------------------ #

    def record_event(self, kind: str, clock: float, **details: Any) -> None:
        """Keep a recent-events window for debugging and reports."""
        self._events.append({"type": kind, "clock": round(clock, 3), **details})
        while len(self._events) > self.event_log_limit:
            self._events.popleft()

    @property
    def events(self) -> list[dict[str, Any]]:
        return list(self._events)

    @property
    def total_spent_cents(self) -> float:
        """Everything the run cost: nominal bill plus fault surcharge."""
        return self.billed_cents + self.repost_cents

    def as_dict(self) -> dict[str, Any]:
        return {
            "counters": {name: getattr(self, name) for name in COUNTER_FIELDS},
            "wall_clock_seconds": round(self.wall_clock_seconds, 3),
            "billed_cents": self.billed_cents,
            "repost_cents": round(self.repost_cents, 3),
            "total_spent_cents": round(self.total_spent_cents, 3),
            "recent_events": self.events,
        }

    def write(self, path: str | Path) -> Path:
        """Persist the telemetry as JSON; returns the written path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    def summary(self) -> str:
        """A compact human-readable report for CLI output."""
        minutes = self.wall_clock_seconds / 60.0
        return (
            f"rounds={self.rounds} answered={self.answered_pairs} "
            f"re-posts={self.re_posts} expired={self.expired} "
            f"abandoned={self.abandoned} machine={self.machine_answers} "
            f"spam={self.spam_hijacked} "
            f"spent={self.total_spent_cents / 100:.2f}USD "
            f"wall-clock={minutes:.1f}min"
        )


__all__ = ["COUNTER_FIELDS", "GAUGE_FIELDS", "Telemetry"]
