"""Opt-in sampling profiler: timer-signal based, near-zero when idle.

``sys.setprofile``-style tracing instruments *every* call and would tax
the pipeline's tight loops by integer factors; statistical sampling costs
only the signal handler, a few microseconds every *interval*.  The
profiler arms ``ITIMER_PROF`` (CPU time, so blocked/sleeping code is never
blamed) and counts, for each delivery, the interrupted frame and its whole
call stack:

* **self samples** — the function actually on-CPU (hot-path attribution);
* **cumulative samples** — every frame on the stack (who *caused* the
  time), capped at :data:`MAX_STACK_DEPTH` frames.

Frames are keyed ``module:function`` from the code object, so the report
needs no symbolication step.  CPython constraints: signal handlers only
run on the main thread, so :meth:`start` refuses elsewhere, and delivery
happens between bytecodes — long C calls (a numpy matmul) are attributed
to the Python frame that invoked them, which is exactly the attribution a
reader wants.  The previous ``SIGPROF`` disposition and timer are restored
on :meth:`stop`, making nested/external profiler use safe.
"""

from __future__ import annotations

import signal
import threading
from collections import Counter as TallyCounter
from pathlib import Path

from ..exceptions import ObservabilityError

#: Frames of stack recorded per sample (beyond this, callers are elided).
MAX_STACK_DEPTH = 48

#: True when the platform has the POSIX interval timers the profiler needs.
SUPPORTED = hasattr(signal, "setitimer") and hasattr(signal, "SIGPROF")


def _frame_key(frame) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", Path(code.co_filename).stem)
    return f"{module}:{code.co_name}"


class SamplingProfiler:
    """Periodic CPU-time stack sampler (main thread only, opt-in).

    Args:
        interval: seconds of *CPU time* between samples.

    Usage::

        with SamplingProfiler(interval=0.002) as profiler:
            run_pipeline()
        print(profiler.report())
    """

    def __init__(self, interval: float = 0.005) -> None:
        if interval <= 0:
            raise ObservabilityError(f"interval must be > 0, got {interval}")
        self.interval = interval
        self.samples = 0
        self.self_counts: TallyCounter[str] = TallyCounter()
        self.cumulative_counts: TallyCounter[str] = TallyCounter()
        self._running = False
        self._previous_handler = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if not SUPPORTED:  # pragma: no cover - platform-dependent
            raise ObservabilityError(
                "sampling profiler needs signal.setitimer/SIGPROF "
                "(POSIX only)"
            )
        if threading.current_thread() is not threading.main_thread():
            raise ObservabilityError(
                "sampling profiler must start on the main thread "
                "(CPython delivers signals there)"
            )
        if self._running:
            raise ObservabilityError("profiler already running")
        self._running = True
        self._previous_handler = signal.signal(signal.SIGPROF, self._sample)
        signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)

    def stop(self) -> None:
        if not self._running:
            return
        signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
        signal.signal(signal.SIGPROF, self._previous_handler)
        self._previous_handler = None
        self._running = False

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Sampling and reporting
    # ------------------------------------------------------------------ #

    def _sample(self, _signum, frame) -> None:
        self.samples += 1
        if frame is None:  # pragma: no cover - delivery race
            return
        self.self_counts[_frame_key(frame)] += 1
        seen: set[str] = set()
        depth = 0
        while frame is not None and depth < MAX_STACK_DEPTH:
            key = _frame_key(frame)
            if key not in seen:  # recursion: one cumulative hit per sample
                seen.add(key)
                self.cumulative_counts[key] += 1
            frame = frame.f_back
            depth += 1

    def report(self, top: int = 15) -> str:
        """Human summary: the hottest frames by self samples."""
        if not self.samples:
            return "no samples collected (workload shorter than the interval?)"
        lines = [
            f"{self.samples} samples at {self.interval * 1000:.1f} ms CPU interval",
            f"{'self%':>6} {'cum%':>6}  {'samples':>7}  location",
        ]
        for key, count in self.self_counts.most_common(top):
            lines.append(
                f"{100 * count / self.samples:6.1f} "
                f"{100 * self.cumulative_counts[key] / self.samples:6.1f} "
                f"{count:8d}  {key}"
            )
        return "\n".join(lines)

    def as_dict(self, top: int = 50) -> dict:
        return {
            "samples": self.samples,
            "interval_seconds": self.interval,
            "self": dict(self.self_counts.most_common(top)),
            "cumulative": dict(self.cumulative_counts.most_common(top)),
        }


__all__ = ["MAX_STACK_DEPTH", "SUPPORTED", "SamplingProfiler"]
