"""The process-wide observability handle and the pipeline's hook points.

:class:`Observability` bundles one tracer, one metrics registry, and an
optional sampling profiler; :func:`current` returns the installed handle
(a permanently-disabled singleton by default) and :func:`activated` swaps
a live one in for a ``with`` block.  Pipeline code *always* calls the
hooks — they cost an attribute check when observability is off — so
turning tracing on is a pure runtime decision (a CLI flag, a test
fixture), never a code path change.

Hook inventory (each documents the metric names it owns):

* :func:`observe_round` — per-round selection accounting; **returns the
  vertex batch it was shown, unchanged**.  The returned list is what the
  selector actually asks, which makes this the exact seam the
  ``obs-perturbs-selection`` mutant attacks and the
  ``check_observability_transparent`` battery step certifies.
* :func:`record_selection_metrics` — the canonical mapping from the
  ad-hoc ``SelectionResult.extras["selection"]`` dict onto registry
  metrics (one schema for ``repro simulate`` tables, Prometheus, and the
  shard merge).
* :func:`record_executor_stats` — shard-executor fault counters.

Transparency contract: hooks read, record, and return their inputs
untouched; they never consume RNG state, mutate graphs/colorings, or
reorder batches.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from .metrics import COUNT_BOUNDARIES, MetricsRegistry, SECONDS_BOUNDARIES
from .profiler import SamplingProfiler
from .trace import Tracer


@dataclass
class Observability:
    """One run's observability handle: tracer + registry (+ profiler).

    Args:
        tracing: record spans (hierarchical timings).
        metrics: record registry metrics.  The registry object always
            exists so call sites stay branch-free; this flag gates the
            hooks that would populate it.
        profiler: an armed :class:`~repro.obs.profiler.SamplingProfiler`,
            when hot-path attribution was requested.
    """

    tracing: bool = True
    metrics: bool = True
    profiler: SamplingProfiler | None = None
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(init=False)

    def __post_init__(self) -> None:
        self.tracer = Tracer(enabled=self.tracing)

    @property
    def enabled(self) -> bool:
        """True when any instrumentation (spans or metrics) is live."""
        return self.tracing or self.metrics


#: The inert default: hooks bail out, spans are the shared no-op.
DISABLED = Observability(tracing=False, metrics=False)

_installed = DISABLED
_install_lock = threading.Lock()


def current() -> Observability:
    """The installed observability handle (the disabled singleton if none)."""
    return _installed


@contextmanager
def activated(obs: Observability | None = None):
    """Install *obs* (default: a fresh fully-enabled handle) for a block.

    Installation is process-global — the pipeline's stages, the engine,
    and the shard coordinator all pick it up through :func:`current` —
    and always restored, so a crashed run cannot leak an active tracer
    into the next test.
    """
    global _installed
    obs = obs or Observability()
    with _install_lock:
        previous = _installed
        _installed = obs
    try:
        yield obs
    finally:
        with _install_lock:
            _installed = previous


# --------------------------------------------------------------------------- #
# Pipeline hooks
# --------------------------------------------------------------------------- #


def observe_round(
    obs: Observability,
    selector_name: str,
    round_index: int,
    vertices: list[int],
    cover_seconds: float,
) -> list[int]:
    """Record one selection round; returns the batch unchanged.

    Metrics: ``repro_selection_rounds_total`` and
    ``repro_selection_questions_total`` counters plus the
    ``repro_selection_round_batch_size`` histogram, all labeled
    ``selector=<name>``.
    """
    if obs.metrics:
        registry = obs.registry
        registry.counter(
            "repro_selection_rounds_total",
            "selection rounds executed",
            selector=selector_name,
        ).inc()
        registry.counter(
            "repro_selection_questions_total",
            "vertices sent to the crowd",
            selector=selector_name,
        ).inc(len(vertices))
        registry.histogram(
            "repro_selection_round_batch_size",
            "questions per selection round",
            boundaries=COUNT_BOUNDARIES,
            selector=selector_name,
        ).observe(len(vertices))
        registry.histogram(
            "repro_selection_cover_seconds",
            "per-round question-selection (path cover) time",
            selector=selector_name,
        ).observe(cover_seconds)
    return vertices


def record_selection_metrics(
    obs: Observability, selector_name: str, selection_stats: dict
) -> None:
    """Canonical ``extras["selection"]`` → registry mapping.

    One schema for every consumer (CLI tables, Prometheus, JSON):

    ==============================  =======================================
    extras key                      metric
    ==============================  =======================================
    ``rounds``                      ``repro_selection_rounds`` gauge
    ``cover_seconds``               ``repro_selection_cover_seconds_total``
    ``propagate_seconds``           ``repro_selection_propagate_seconds_total``
    ``incremental``                 ``repro_selection_incremental`` gauge
    ``engine.covers``               ``repro_selection_path_covers_total``
    ``engine.scratch_builds``       ``repro_selection_scratch_builds_total``
    ``engine.deleted_vertices``     ``repro_selection_deleted_vertices_total``
    ==============================  =======================================
    """
    if not obs.metrics:
        return
    registry = obs.registry
    labels = {"selector": selector_name}
    registry.gauge(
        "repro_selection_rounds", "selection rounds in the last run", **labels
    ).set(selection_stats.get("rounds", 0))
    registry.counter(
        "repro_selection_cover_seconds_total",
        "seconds choosing questions (Fig. 30 assignment time)",
        **labels,
    ).inc(selection_stats.get("cover_seconds", 0.0))
    registry.counter(
        "repro_selection_propagate_seconds_total",
        "seconds propagating answers through the partial order",
        **labels,
    ).inc(selection_stats.get("propagate_seconds", 0.0))
    registry.gauge(
        "repro_selection_incremental",
        "1 when the incremental selection engine was active",
        **labels,
    ).set(1.0 if selection_stats.get("incremental") else 0.0)
    engine_stats = selection_stats.get("engine") or {}
    for key, metric_name in (
        ("covers", "repro_selection_path_covers_total"),
        ("scratch_builds", "repro_selection_scratch_builds_total"),
        ("deleted_vertices", "repro_selection_deleted_vertices_total"),
    ):
        if key in engine_stats:
            registry.counter(
                metric_name, f"incremental path-cover engine: {key}", **labels
            ).inc(engine_stats[key])


def record_executor_stats(obs: Observability, stats_dict: dict) -> None:
    """Shard-executor fault telemetry → ``repro_shard_*`` metrics."""
    if not obs.metrics:
        return
    registry = obs.registry
    for key in ("tasks", "retries", "timeouts", "broken_pools", "fallbacks"):
        registry.counter(
            f"repro_shard_{key}_total", f"shard executor: {key}"
        ).inc(stats_dict.get(key, 0))
    registry.counter(
        "repro_shard_run_seconds_total",
        "wall seconds inside ShardExecutor.run",
    ).inc(stats_dict.get("run_seconds", 0.0))


def record_stream_batch(obs: Observability, report: dict) -> None:
    """One streaming-resolution batch → ``repro_stream_*`` metrics.

    Same transparency contract as every other hook: reads the finished
    batch report, never steers the run.
    """
    if not obs.metrics:
        return
    registry = obs.registry
    registry.counter(
        "repro_stream_batches_total", "streaming resolution: batches ingested"
    ).inc()
    for key, name in (
        ("new_records", "repro_stream_records_total"),
        ("new_pairs", "repro_stream_pairs_total"),
        ("questions", "repro_stream_questions_total"),
    ):
        registry.counter(
            name, f"streaming resolution: {key.replace('_', ' ')}"
        ).inc(report.get(key, 0))
    registry.histogram(
        "repro_pipeline_stage_seconds",
        "wall seconds per resolution pipeline stage",
        boundaries=SECONDS_BOUNDARIES,
        stage="stream.ingest",
    ).observe(report.get("ingest_seconds", 0.0))


def record_serve_request(
    obs: Observability, op: str, seconds: float, status: str
) -> None:
    """One serve-protocol request → ``repro_serve_*`` metrics.

    Metrics: ``repro_serve_requests_total`` counter labeled
    ``op=<op>, status=<ok|error|shed>``, the ``repro_serve_shed_total``
    counter when the request was load-shed, and the
    ``repro_serve_request_seconds`` histogram labeled ``op=<op>``.
    """
    if not obs.metrics:
        return
    registry = obs.registry
    registry.counter(
        "repro_serve_requests_total",
        "serve: protocol requests handled",
        op=op,
        status=status,
    ).inc()
    if status == "shed":
        registry.counter(
            "repro_serve_shed_total",
            "serve: requests refused by admission control",
            op=op,
        ).inc()
    registry.histogram(
        "repro_serve_request_seconds",
        "serve: wall seconds per protocol request",
        boundaries=SECONDS_BOUNDARIES,
        op=op,
    ).observe(seconds)


def record_serve_sessions(
    obs: Observability, resident: int, known: int
) -> None:
    """Session-registry occupancy → ``repro_serve_sessions_*`` gauges."""
    if not obs.metrics:
        return
    registry = obs.registry
    registry.gauge(
        "repro_serve_sessions_resident",
        "serve: resolver sessions currently in memory",
    ).set(resident)
    registry.gauge(
        "repro_serve_sessions_known",
        "serve: sessions resident or restorable from the checkpoint root",
    ).set(known)


def record_serve_event(obs: Observability, event: str) -> None:
    """One registry lifecycle event → ``repro_serve_<event>_total``.

    Events: ``evictions``, ``restores``, ``drain_checkpoints``.
    """
    if not obs.metrics:
        return
    obs.registry.counter(
        f"repro_serve_{event}_total", f"serve: session {event}"
    ).inc()


def record_stage_seconds(
    obs: Observability, stage: str, seconds: float, **labels: str
) -> None:
    """One pipeline stage's wall time → ``repro_pipeline_stage_seconds``."""
    if not obs.metrics:
        return
    obs.registry.histogram(
        "repro_pipeline_stage_seconds",
        "wall seconds per resolution pipeline stage",
        boundaries=SECONDS_BOUNDARIES,
        stage=stage,
        **labels,
    ).observe(seconds)


__all__ = [
    "DISABLED",
    "Observability",
    "activated",
    "current",
    "observe_round",
    "record_executor_stats",
    "record_selection_metrics",
    "record_serve_event",
    "record_serve_request",
    "record_serve_sessions",
    "record_stage_seconds",
    "record_stream_batch",
]
