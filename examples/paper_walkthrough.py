"""Walk through the paper's running example (Tables 1-2, Figs. 1-8).

Reproduces, step by step and with the published numbers, what each stage of
the framework does on the eleven restaurant records of Table 1:

1. the similarity vectors of Table 2,
2. the partial-order graph of Fig. 1 (as its Hasse diagram),
3. the nine epsilon-groups of Figs. 3-4,
4. the topological layers of Fig. 7,
5. the Power run of §5.3.2 — four questions, three iterations,
6. the error-tolerance arithmetic of §6 / Appendix C.

Run:
    python examples/paper_walkthrough.py
"""

import numpy as np

from repro.crowd import PerfectCrowd
from repro.data import paper_pairs, paper_table, paper_vectors
from repro.data.ground_truth import pair_truth
from repro.data.paper_example import PAPER_GREEN_TRAINING_PAIRS
from repro.graph import (
    GroupedGraph,
    PairGraph,
    order_statistics,
    split_grouping,
    topological_layers,
    transitive_reduction,
)
from repro.selection import TopoSortSelector, attribute_weights, weighted_similarities


def pair_name(pair):
    return f"p{pair[0] + 1},{pair[1] + 1}"


def main() -> None:
    table = paper_table()
    pairs = paper_pairs()
    vectors = paper_vectors()
    truth = pair_truth(table, pairs)

    print("== Table 1: the records ==")
    for record in table:
        print(f"  r{record.record_id + 1}: {' | '.join(record.values)}")

    print("\n== Table 2: similarity vectors of the 18 similar pairs ==")
    for pair, vector in zip(pairs, vectors):
        print(f"  {pair_name(pair):7s} {vector}")

    print("\n== Fig. 1: the partial-order graph ==")
    graph = PairGraph(pairs, vectors)
    print(f"  {order_statistics(graph)}")
    hasse = transitive_reduction(graph)
    print(f"  Hasse edges ({len(hasse)}, the ones Fig. 1 draws):")
    for u, v in sorted(hasse):
        print(f"    {pair_name(pairs[u])} -> {pair_name(pairs[v])}")

    print("\n== Figs. 3-4: split grouping with eps = 0.1 ==")
    grouping = split_grouping(vectors, 0.1)
    grouped = GroupedGraph(graph, grouping)
    for index, group in enumerate(grouping, start=1):
        members = ", ".join(pair_name(pairs[v]) for v in group)
        print(f"  g{index}: {{{members}}}")

    print("\n== Fig. 7: topological layers of the grouped graph ==")
    for level, layer in enumerate(topological_layers(grouped), start=1):
        names = [
            "{" + ", ".join(pair_name(p) for p in grouped.member_pairs(int(v))) + "}"
            for v in layer
        ]
        print(f"  L{level}: {' '.join(names)}")

    print("\n== §5.3.2: the Power run (paper: 4 questions, 3 iterations) ==")
    result = TopoSortSelector().run(grouped, PerfectCrowd(truth).session())
    print(f"  questions : {result.questions}")
    print(f"  iterations: {result.iterations}")
    correct = sum(truth[p] == v for p, v in result.labels.items())
    print(f"  labels    : {correct}/{len(truth)} correct")

    print("\n== §6 / Appendix C: attribute weights and weighted similarity ==")
    index_of = {pair: row for row, pair in enumerate(pairs)}
    green = vectors[[index_of[p] for p in PAPER_GREEN_TRAINING_PAIRS]]
    weights = attribute_weights(green, num_attributes=4)
    print(f"  weights (paper: 0.32, 0.28, 0.21, 0.19): {np.round(weights, 2)}")
    s_hat = weighted_similarities(vectors, weights)
    for pair in ((0, 1), (1, 3), (1, 4)):
        print(f"  s_hat({pair_name(pair)}) = {s_hat[index_of[pair]]:.2f} "
              f"(paper: {'0.72 -> GREEN' if pair == (0, 1) else '~0.28 -> RED'})")


if __name__ == "__main__":
    main()
