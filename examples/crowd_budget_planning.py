"""Budget planning: compare what each crowd-ER algorithm would cost.

The paper's headline claim is monetary: Power reduces cost to ~1.25 % of
the baselines.  This example prices out one dataset under the paper's AMT
model (ten pairs per HIT, ten cents per HIT, five workers per question) for
all five algorithms, so a practitioner can see the trade-off before
spending real money.

Run:
    python examples/crowd_budget_planning.py
"""

import numpy as np

from repro import (
    ACDResolver,
    GCERResolver,
    PowerConfig,
    PowerResolver,
    TransResolver,
    restaurant,
)
from repro.core import pairwise_quality
from repro.crowd import SimulatedCrowd, WorkerPool
from repro.data.ground_truth import pair_truth, true_match_pairs
from repro.similarity import similar_pairs
from repro.similarity.jaccard import jaccard
from repro.similarity.tokenize import word_tokens


def main() -> None:
    table = restaurant(seed=7)
    pairs = similar_pairs(table, 0.2)
    truth = pair_truth(table, pairs)
    gold = true_match_pairs(table)

    # One shared platform so every algorithm sees identical answers —
    # the paper's fairness protocol (§7.1).
    crowd = SimulatedCrowd(truth, WorkerPool(accuracy_range="80", seed=11))

    tokens = [word_tokens(table.record_text(r.record_id)) for r in table]
    scores = np.array([jaccard(tokens[i], tokens[j]) for i, j in pairs])

    rows = []
    for label, error_tolerant in (("power", False), ("power+", True)):
        resolver = PowerResolver(PowerConfig(error_tolerant=error_tolerant, seed=11))
        outcome = resolver.resolve(table, session=crowd.session())
        rows.append((label, outcome.questions, outcome.iterations,
                     outcome.cost_cents, outcome.quality.f_measure))
    for baseline in (TransResolver(), ACDResolver(seed=11), GCERResolver()):
        outcome = baseline.run(pairs, scores, crowd.session())
        quality = pairwise_quality(outcome.matches, gold)
        rows.append((outcome.name, outcome.questions, outcome.iterations,
                     outcome.cost_cents, quality.f_measure))

    print(f"{'algorithm':10s} {'questions':>9s} {'rounds':>6s} {'cost':>8s} {'F1':>6s}")
    baseline_cost = max(row[3] for row in rows)
    for label, questions, rounds, cost, f1 in rows:
        print(f"{label:10s} {questions:9d} {rounds:6d} "
              f"${cost / 100:7.2f} {f1:6.3f}   "
              f"({cost / baseline_cost:6.1%} of the most expensive)")


if __name__ == "__main__":
    main()
