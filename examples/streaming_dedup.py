"""Streaming deduplication: resolve records as they arrive.

A warehouse rarely sees its data all at once.  This example feeds the
restaurant dataset through :class:`repro.core.IncrementalResolver` in six
batches: each batch's new records are matched against everything seen so
far using only *new* candidate pairs (the old ones are never re-paid), and
the cluster structure grows monotonically.

Run:
    python examples/streaming_dedup.py
"""

from repro import PowerConfig, PowerResolver, restaurant
from repro.core import IncrementalResolver


def main() -> None:
    table = restaurant(seed=7)
    config = PowerConfig(seed=3)

    resolver = IncrementalResolver(table.attributes, config=config, name="stream")
    batch_size = 143  # six batches of the 858 records
    print(f"{'batch':>5s} {'records':>8s} {'new pairs':>9s} "
          f"{'questions':>9s} {'clusters':>8s}")
    for start in range(0, len(table), batch_size):
        records = table.records[start : start + batch_size]
        report = resolver.add_batch(
            [record.values for record in records],
            entity_ids=[record.entity_id for record in records],
            worker_band="90",
        )
        print(f"{report['batch']:5d} {len(resolver.table):8d} "
              f"{report['new_pairs']:9d} {report['questions']:9d} "
              f"{report['clusters']:8d}")

    print("\nfinal state:")
    print(resolver.summary())

    one_shot = PowerResolver(config).resolve(table, worker_band="90")
    print(
        f"\none-shot resolution of the same table: {one_shot.questions} questions, "
        f"F1={one_shot.quality.f_measure:.3f}\n"
        "Streaming pays some extra questions (each batch re-derives boundary\n"
        "information the one-shot graph would have shared), but never touches\n"
        "an already-decided pair again."
    )


if __name__ == "__main__":
    main()
