"""Deduplicating a dirty bibliography (the paper's Cora scenario).

Bibliographic records are the hard case for crowdsourced ER: clusters are
large (~5 duplicate citations per paper), strings are dirty (author
initials, venue abbreviations, missing fields), and workers make mistakes.
This example shows why the error-tolerant Power+ matters: it runs both
Power and Power+ against a mediocre crowd (70-80 % accuracy) and reports
how much quality the §6 error-tolerance machinery recovers.

Run:
    python examples/bibliography_dedup.py
"""

from repro import PowerConfig, PowerResolver, cora
from repro.crowd import SimulatedCrowd, WorkerPool
from repro.data.ground_truth import entity_clusters, pair_truth
from repro.similarity import similar_pairs


def main() -> None:
    table = cora(seed=11)
    gold_clusters = entity_clusters(table)
    sizes = sorted((len(m) for m in gold_clusters.values()), reverse=True)
    print(f"dataset: {table.name} — {len(table)} records, "
          f"{len(gold_clusters)} papers, largest cluster {sizes[0]} citations")

    pairs = similar_pairs(table, 0.2)
    truth = pair_truth(table, pairs)
    crowd = SimulatedCrowd(truth, WorkerPool(accuracy_range="70", seed=4))

    for error_tolerant in (False, True):
        config = PowerConfig(
            error_tolerant=error_tolerant,
            epsilon=0.1,
            selector="power",
            seed=4,
        )
        result = PowerResolver(config).resolve(table, session=crowd.session())
        label = "Power+" if error_tolerant else "Power "
        blue = len(result.selection.state.blue_vertices()) if error_tolerant else 0
        print(
            f"{label}: {result.questions:4d} questions, "
            f"{result.iterations:2d} iterations, "
            f"{blue:3d} low-confidence vertices deferred, "
            f"F1={result.quality.f_measure:.3f} "
            f"(P={result.quality.precision:.3f} R={result.quality.recall:.3f})"
        )

    print(
        "\nPower+ postpones low-confidence answers (BLUE vertices) instead of\n"
        "letting them poison the partial-order inference, then settles them\n"
        "with the attribute-weighted histogram of §6."
    )


if __name__ == "__main__":
    main()
