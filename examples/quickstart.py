"""Quickstart: resolve a small restaurant table with Power+ in ~20 lines.

Run:
    python examples/quickstart.py
"""

from repro import PowerConfig, PowerResolver, restaurant


def main() -> None:
    # A synthetic stand-in for the paper's Restaurant dataset: 858 records
    # describing 752 real restaurants, with ground-truth entity ids attached.
    table = restaurant(seed=7)
    print(f"dataset: {table.name} — {len(table)} records, "
          f"{table.num_attributes} attributes {table.attributes}")

    # The paper's default pipeline: bigram similarity, split grouping with
    # eps=0.1, topological-sorting question selection, error tolerance on
    # (Power+).  Without a crowd session, a simulated crowd is built from
    # the table's ground truth (default: the 90%-accuracy worker band).
    resolver = PowerResolver(PowerConfig(seed=1))
    result = resolver.resolve(table)

    print(f"candidate pairs after pruning : {len(result.candidate_pairs)}")
    print(f"crowd questions asked         : {result.questions}")
    print(f"crowd iterations (latency)    : {result.iterations}")
    print(f"monetary cost                 : {result.cost_cents} cents")
    print(f"clusters found                : {len(result.clusters)}")
    print(f"quality vs ground truth       : {result.quality}")

    # The largest clusters the crowd discovered:
    big = [c for c in result.clusters if len(c) > 1][:5]
    for cluster in big:
        print("cluster:")
        for record_id in cluster:
            print(f"   r{record_id}: {' | '.join(table[record_id].values)}")


if __name__ == "__main__":
    main()
