"""A miniature of the paper's simulation experiment (Figs. 12-14).

Sweeps the worker-accuracy band on the Restaurant dataset and prints
quality, cost, and latency for all five algorithms — the library's
experiment harness doing in a few lines what §7.2.2 reports.

Run:
    python examples/worker_accuracy_study.py        (~2-3 minutes)
"""

from repro.experiments import compare_methods, prepare
from repro.experiments.reporting import emit


def main() -> None:
    workload = prepare("restaurant")
    print(
        f"dataset: {workload.name} — {len(workload.table)} records, "
        f"{len(workload.pairs)} candidate pairs\n"
    )
    rows = []
    for band in ("70", "80", "90"):
        for row in compare_methods(workload, band, seed=0, mode="simulation"):
            rows.append([
                band, row.method, row.f_measure, row.questions,
                row.iterations, f"${row.cost_cents / 100:.2f}",
            ])
    emit(
        "Worker-accuracy sweep (Restaurant, simulation workers)",
        ["band", "method", "F1", "#questions", "#iterations", "cost"],
        rows,
    )
    print(
        "Things to notice (the paper's Figs. 12-14):\n"
        " * power/power+ ask ~30x fewer questions at every band;\n"
        " * at 70-80% accuracy, power+ keeps quality high while the\n"
        "   error-blind baselines (trans, gcer) collapse;\n"
        " * power's iteration count stays ~5 while baselines need 10-40."
    )


if __name__ == "__main__":
    main()
