"""Bring your own data: resolve a CSV with a pluggable crowd.

Shows the integration points a downstream user needs:

* loading records from CSV (``entity_id`` column optional),
* choosing per-attribute similarity functions,
* swapping the crowd: here a :class:`~repro.crowd.platform.PerfectCrowd`
  oracle stands in for a real platform adapter — any object with an
  ``answer(pair) -> VoteOutcome`` method works, so wiring an actual AMT
  client means implementing one method.

Run:
    python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

from repro import PowerConfig, PowerResolver, Table, load_csv, save_csv
from repro.crowd import PerfectCrowd
from repro.data.ground_truth import pair_truth

PRODUCTS = [
    # (name, brand, price) — three entities, seven records.
    ("thinkpad x1 carbon gen 9", "lenovo", "1399", 0),
    ("lenovo thinkpad x1 carbon (9th gen)", "lenovo", "1399.00", 0),
    ("x1 carbon 9th generation ultrabook", "lenovo inc", "1,399", 0),
    ("galaxy s21 ultra 5g", "samsung", "1199", 1),
    ("samsung galaxy s21 ultra", "samsung electronics", "1199.99", 1),
    ("airpods pro 2nd gen", "apple", "249", 2),
    ("apple airpods pro (2nd generation)", "apple inc.", "249.00", 2),
]


def main() -> None:
    table = Table.from_rows(
        name="products",
        attributes=("title", "brand", "price"),
        rows=[row[:3] for row in PRODUCTS],
        entity_ids=[row[3] for row in PRODUCTS],
    )

    # Round-trip through CSV, as a user with an on-disk dataset would start.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "products.csv"
        save_csv(table, path)
        table = load_csv(path)
    print(f"loaded {len(table)} records with attributes {table.attributes}")

    config = PowerConfig(
        # Long titles suit q-gram similarity; short brand strings suit edit
        # similarity; prices tokenize poorly, so edit similarity again.
        similarity=("bigram", "edit", "edit"),
        pruning_threshold=0.2,
        epsilon=0.05,
        seed=0,
    )
    resolver = PowerResolver(config)
    pairs = resolver.candidate_pairs(table)

    # Swap in your own crowd here; the oracle answers from ground truth.
    crowd = PerfectCrowd(pair_truth(table, pairs))
    result = resolver.resolve(table, session=crowd.session())

    print(f"asked {result.questions} of {len(pairs)} candidate pairs")
    for cluster in result.clusters:
        if len(cluster) > 1:
            print("same product:")
            for record_id in cluster:
                print(f"   {table[record_id].values[0]!r}")
    print(f"quality: {result.quality}")


if __name__ == "__main__":
    main()
