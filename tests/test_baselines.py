"""Tests for the Trans, ACD, and GCER baseline resolvers."""

import numpy as np
import pytest

from repro.baselines import ACDResolver, GCERResolver, TransResolver, independent_batches
from repro.crowd import PerfectCrowd, SimulatedCrowd, WorkerPool
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def workload(small_bundle):
    table, pairs, vectors, truth = small_bundle
    scores = vectors.mean(axis=1)
    return pairs, scores, truth


class TestIndependentBatches:
    def test_record_disjoint_within_batch(self):
        pairs = [(0, 1), (1, 2), (2, 3), (4, 5)]
        batches = independent_batches(pairs)
        for batch in batches:
            used = [r for pair in batch for r in pair]
            assert len(used) == len(set(used))

    def test_preserves_order_and_covers_all(self):
        pairs = [(0, 1), (1, 2), (0, 2)]
        batches = independent_batches(pairs)
        flattened = [pair for batch in batches for pair in batch]
        assert sorted(flattened) == sorted(pairs)
        assert batches[0][0] == (0, 1)

    def test_batch_limit(self):
        pairs = [(0, 1), (2, 3), (4, 5)]
        batches = independent_batches(pairs, batch_limit=1)
        assert all(len(batch) == 1 for batch in batches)


class TestTrans:
    def test_oracle_gives_perfect_labels(self, workload):
        pairs, scores, truth = workload
        result = TransResolver().run(pairs, scores, PerfectCrowd(truth).session())
        assert result.labels == truth

    def test_transitivity_saves_questions(self):
        """A clique of matching records needs only its spanning tree asked."""
        pairs = [(0, 1), (0, 2), (1, 2)]
        scores = np.array([0.9, 0.8, 0.7])
        truth = {pair: True for pair in pairs}
        result = TransResolver().run(pairs, scores, PerfectCrowd(truth).session())
        assert result.questions == 2
        assert result.labels == truth

    def test_negative_transitivity_saves_questions(self):
        """0=1 asked, 0!=2 asked, then 1!=2 is deduced."""
        pairs = [(0, 1), (0, 2), (1, 2)]
        scores = np.array([0.9, 0.8, 0.7])
        truth = {(0, 1): True, (0, 2): False, (1, 2): False}
        result = TransResolver().run(pairs, scores, PerfectCrowd(truth).session())
        assert result.questions == 2
        assert result.labels == truth

    def test_asks_fewer_than_all_pairs(self, workload):
        pairs, scores, truth = workload
        result = TransResolver().run(pairs, scores, PerfectCrowd(truth).session())
        assert result.questions < len(pairs)

    def test_parallel_batching_reduces_iterations(self, workload):
        pairs, scores, truth = workload
        result = TransResolver().run(pairs, scores, PerfectCrowd(truth).session())
        assert result.iterations < result.questions

    def test_error_propagates(self):
        """One wrong Yes merges clusters and corrupts deduced pairs —
        the failure mode the paper attributes to Trans."""
        pairs = [(0, 1), (0, 2), (1, 2)]
        scores = np.array([0.9, 0.8, 0.7])
        truth = {(0, 1): True, (0, 2): False, (1, 2): False}

        class LyingCrowd(PerfectCrowd):
            def answer(self, pair):
                outcome = super().answer(pair)
                if pair == (0, 2):  # wrongly merge 0 and 2
                    return type(outcome)(answer=True, confidence=1.0, votes=outcome.votes)
                return outcome

        result = TransResolver().run(pairs, scores, LyingCrowd(truth).session())
        assert result.labels[(1, 2)] is True  # propagated error


class TestACD:
    def test_oracle_gives_perfect_labels(self, workload):
        pairs, scores, truth = workload
        result = ACDResolver().run(pairs, scores, PerfectCrowd(truth).session())
        assert result.labels == truth

    def test_asks_more_than_trans(self, workload):
        """ACD's verification redundancy costs questions (Fig. 10/13)."""
        pairs, scores, truth = workload
        session_factory = lambda: PerfectCrowd(truth).session()
        trans = TransResolver().run(pairs, scores, session_factory())
        acd = ACDResolver().run(pairs, scores, session_factory())
        assert acd.questions >= trans.questions

    def test_budget_respected(self, workload):
        pairs, scores, truth = workload
        result = ACDResolver(budget=10).run(pairs, scores, PerfectCrowd(truth).session())
        assert result.questions <= 10

    def test_more_robust_than_trans_under_noise(self, workload):
        pairs, scores, truth = workload

        def accuracy(result):
            return np.mean([truth[p] == v for p, v in result.labels.items()])

        trans_scores, acd_scores = [], []
        for seed in range(5):
            crowd = SimulatedCrowd(truth, WorkerPool(accuracy_range="70", seed=seed))
            trans_scores.append(accuracy(TransResolver().run(pairs, scores, crowd.session())))
            acd_scores.append(accuracy(ACDResolver(seed=seed).run(pairs, scores, crowd.session())))
        assert np.mean(acd_scores) >= np.mean(trans_scores) - 0.02

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ACDResolver(verify_per_record=-1)
        with pytest.raises(ConfigurationError):
            ACDResolver(refinement_rounds=-1)
        with pytest.raises(ConfigurationError):
            ACDResolver(budget=-5)


class TestGCER:
    def test_oracle_gives_perfect_labels(self, workload):
        pairs, scores, truth = workload
        result = GCERResolver().run(pairs, scores, PerfectCrowd(truth).session())
        assert result.labels == truth

    def test_budget_respected(self, workload):
        pairs, scores, truth = workload
        result = GCERResolver(budget=7).run(pairs, scores, PerfectCrowd(truth).session())
        assert result.questions <= 7

    def test_batch_size_bounds_iterations(self, workload):
        pairs, scores, truth = workload
        result = GCERResolver(batch_size=10).run(pairs, scores, PerfectCrowd(truth).session())
        assert result.iterations >= result.questions / 10

    def test_unresolved_pairs_thresholded(self):
        """With budget 0 nothing is asked; labels come from probabilities."""
        pairs = [(0, 1), (2, 3)]
        scores = np.array([0.9, 0.1])
        truth = {(0, 1): True, (2, 3): False}
        result = GCERResolver(budget=0).run(pairs, scores, PerfectCrowd(truth).session())
        assert result.questions == 0
        assert result.labels == truth

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            GCERResolver(budget=-1)
        with pytest.raises(ConfigurationError):
            GCERResolver(batch_size=0)

    def test_score_shape_checked(self, workload):
        pairs, _, truth = workload
        with pytest.raises(ConfigurationError):
            GCERResolver().run(pairs, np.array([0.5]), PerfectCrowd(truth).session())
