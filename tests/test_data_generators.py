"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import acmpub, cora, load_dataset, num_entities, restaurant, synthesize, true_match_pairs
from repro.data.generators import _cluster_sizes
from repro.data.perturb import LIGHT_PERTURBATIONS
from repro.exceptions import ConfigurationError


class TestClusterSizes:
    def test_totals(self):
        rng = np.random.default_rng(0)
        sizes = _cluster_sizes(10, 25, rng, skew=0.5)
        assert len(sizes) == 10
        assert sum(sizes) == 25
        assert min(sizes) >= 1

    def test_records_equal_entities(self):
        rng = np.random.default_rng(0)
        assert _cluster_sizes(5, 5, rng, skew=0.0) == [1] * 5

    def test_skew_produces_long_tail(self):
        rng = np.random.default_rng(1)
        flat = _cluster_sizes(50, 300, np.random.default_rng(1), skew=0.0)
        skewed = _cluster_sizes(50, 300, rng, skew=1.0)
        assert max(skewed) > max(flat)

    def test_invalid_shapes(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            _cluster_sizes(0, 5, rng, 0.0)
        with pytest.raises(ConfigurationError):
            _cluster_sizes(10, 5, rng, 0.0)


class TestGenerators:
    def test_restaurant_shape(self):
        table = restaurant()
        assert len(table) == 858
        assert num_entities(table) == 752
        assert table.num_attributes == 4

    def test_cora_shape(self):
        table = cora()
        assert len(table) == 997
        assert num_entities(table) == 191
        assert table.num_attributes == 8

    def test_acmpub_scales(self):
        table = acmpub(scale=0.01)
        assert len(table) == round(66_879 * 0.01)
        assert num_entities(table) == round(5_347 * 0.01)
        assert table.num_attributes == 4

    def test_acmpub_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            acmpub(scale=0.0)

    def test_determinism(self):
        a, b = restaurant(seed=3), restaurant(seed=3)
        assert [r.values for r in a] == [r.values for r in b]

    def test_different_seeds_differ(self):
        a, b = restaurant(seed=3), restaurant(seed=4)
        assert [r.values for r in a] != [r.values for r in b]

    def test_no_empty_values(self):
        for record in cora(seed=2):
            assert all(value.strip() for value in record.values)

    def test_duplicates_share_entity(self):
        table = restaurant(seed=5)
        assert len(true_match_pairs(table)) >= len(table) - num_entities(table)

    def test_load_dataset_by_name(self):
        assert load_dataset("restaurant").name == "restaurant"

    def test_load_dataset_unknown(self):
        with pytest.raises(ConfigurationError):
            load_dataset("imaginary")


class TestSynthesize:
    def test_factory_arity_checked(self):
        with pytest.raises(ConfigurationError):
            synthesize(
                name="bad",
                attributes=("a", "b"),
                entity_factory=lambda rng: ("only-one",),
                num_entities=2,
                num_records=2,
                seed=0,
            )

    def test_keep_first_clean(self):
        table = synthesize(
            name="t",
            attributes=("a",),
            entity_factory=lambda rng: (f"value {int(rng.integers(0, 10_000))}",),
            num_entities=5,
            num_records=15,
            seed=1,
            intensity=0.9,
            pool=LIGHT_PERTURBATIONS,
        )
        # Every entity retains one pristine record.
        by_entity = {}
        for record in table:
            by_entity.setdefault(record.entity_id, []).append(record.values[0])
        assert len(by_entity) == 5
        assert sum(len(v) for v in by_entity.values()) == 15


class TestProducts:
    def test_shape(self):
        from repro.data import products

        table = products()
        assert len(table) == 540
        assert num_entities(table) == 400
        assert table.attributes == ("title", "brand", "category", "price")

    def test_registered_in_datasets(self):
        from repro.data import DATASETS

        assert "products" in DATASETS
        assert load_dataset("products", num_entities=20, num_records=30).name == "products"

    def test_resolvable_end_to_end(self):
        from repro import PowerConfig, PowerResolver
        from repro.data import products

        table = products(num_entities=40, num_records=60, seed=3)
        result = PowerResolver(PowerConfig(seed=3)).resolve(table, worker_band="90")
        assert result.quality.f_measure > 0.7
