"""Tests for majority and weighted-majority vote aggregation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crowd import majority_vote, weighted_majority_vote
from repro.exceptions import CrowdError


class TestMajorityVote:
    def test_unanimous_yes(self):
        outcome = majority_vote([True] * 5)
        assert outcome.answer is True
        assert outcome.confidence == 1.0

    def test_three_two_split(self):
        outcome = majority_vote([True, True, True, False, False])
        assert outcome.answer is True
        assert outcome.confidence == pytest.approx(0.6)

    def test_tie_resolves_to_no(self):
        outcome = majority_vote([True, False])
        assert outcome.answer is False
        assert outcome.confidence == 0.5

    def test_counts_exposed(self):
        outcome = majority_vote([True, False, False])
        assert outcome.num_yes == 1
        assert outcome.num_no == 2

    def test_empty_votes_rejected(self):
        with pytest.raises(CrowdError):
            majority_vote([])

    @given(st.lists(st.booleans(), min_size=1, max_size=15))
    def test_confidence_at_least_half(self, votes):
        outcome = majority_vote(votes)
        assert 0.5 <= outcome.confidence <= 1.0

    @given(st.lists(st.booleans(), min_size=1, max_size=15))
    def test_answer_is_modal(self, votes):
        outcome = majority_vote(votes)
        yes = sum(votes)
        if yes * 2 > len(votes):
            assert outcome.answer is True
        elif yes * 2 < len(votes):
            assert outcome.answer is False


class TestWeightedMajorityVote:
    def test_weights_flip_the_answer(self):
        votes = [True, False, False]
        # Unweighted: No wins.  With a dominant first worker: Yes wins.
        assert majority_vote(votes).answer is False
        assert weighted_majority_vote(votes, [10.0, 1.0, 1.0]).answer is True

    def test_confidence_is_weight_share(self):
        outcome = weighted_majority_vote([True, False], [3.0, 1.0])
        assert outcome.answer is True
        assert outcome.confidence == pytest.approx(0.75)

    def test_mismatched_lengths(self):
        with pytest.raises(CrowdError):
            weighted_majority_vote([True], [1.0, 2.0])

    def test_zero_total_weight(self):
        with pytest.raises(CrowdError):
            weighted_majority_vote([True], [0.0])

    def test_uniform_weights_match_majority(self):
        votes = [True, True, False, False, True]
        assert (
            weighted_majority_vote(votes, [1.0] * 5).answer
            == majority_vote(votes).answer
        )
