"""Metamorphic laws, driven deterministically and through hypothesis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.data import synthesize
from repro.data.perturb import LIGHT_PERTURBATIONS
from repro.data.vocab import CITIES, CUISINES, RESTAURANT_NAME_HEADS
from repro.exceptions import VerificationError
from repro.verify import (
    check_cost_monotonicity,
    check_duplicate_idempotence,
    check_permutation_invariance,
    random_instance,
)


def _entity_factory(rng: np.random.Generator) -> tuple[str, str, str]:
    name = RESTAURANT_NAME_HEADS[int(rng.integers(0, len(RESTAURANT_NAME_HEADS)))]
    city = CITIES[int(rng.integers(0, len(CITIES)))]
    cuisine = CUISINES[int(rng.integers(0, len(CUISINES)))]
    return (f"{name} cafe", city, cuisine)


def _nontrivial(check, *args, **kwargs) -> None:
    """Run *check*, discarding hypothesis examples whose graph is empty."""
    try:
        check(*args, **kwargs)
    except VerificationError as error:
        if "no candidate pairs" in str(error):
            assume(False)
        raise


def _tiny_table(seed: int, num_records: int = 24):
    return synthesize(
        name=f"meta-{seed}",
        attributes=("name", "city", "cuisine"),
        entity_factory=_entity_factory,
        num_entities=max(2, num_records // 2),
        num_records=num_records,
        seed=seed,
        intensity=0.4,
        pool=LIGHT_PERTURBATIONS,
    )


class TestPermutationInvariance:
    @pytest.mark.parametrize("seed", range(3))
    def test_shuffling_records_changes_nothing(self, seed):
        check_permutation_invariance(_tiny_table(seed), seed=seed)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_hypothesis_sweep(self, seed):
        _nontrivial(check_permutation_invariance, _tiny_table(seed % 97), seed=seed)

    @pytest.mark.slow
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.integers(20, 48))
    def test_hypothesis_sweep_slow(self, seed, num_records):
        _nontrivial(
            check_permutation_invariance,
            _tiny_table(seed % 997, num_records),
            seed=seed,
        )


class TestDuplicateIdempotence:
    @pytest.mark.parametrize("seed", range(3))
    def test_duplicate_joins_source_cluster(self, seed):
        check_duplicate_idempotence(_tiny_table(seed), record_id=seed % 5)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 23))
    def test_hypothesis_sweep(self, seed, record_id):
        _nontrivial(
            check_duplicate_idempotence, _tiny_table(seed % 97), record_id=record_id
        )


class TestCostMonotonicity:
    @pytest.mark.parametrize("seed", range(5))
    def test_budget_growth_never_shrinks_cost(self, seed):
        pairs, vectors = random_instance(seed)
        check_cost_monotonicity(pairs, vectors, seed=seed)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_hypothesis_sweep(self, seed):
        pairs, vectors = random_instance(seed % 997)
        check_cost_monotonicity(pairs, vectors, seed=seed)

    def test_overspending_selector_detected(self, monkeypatch):
        from repro.selection.base import QuestionSelector

        original = QuestionSelector.run

        def overspending(self, graph, session, budget=None):
            return original(self, graph, session, budget=None)  # ignores budget

        monkeypatch.setattr(QuestionSelector, "run", overspending)
        pairs, vectors = random_instance(0)
        with pytest.raises(VerificationError, match="overspent"):
            check_cost_monotonicity(pairs, vectors, budgets=(0, 2))
