"""Golden transcripts and shutdown drills for ``repro serve``/``client``.

Two things are pinned here.  First, the client CLI's stdout is an
interface scripts parse — session lines, batch lines, checkpoint lines —
so its shapes are matched by regex exactly like the ``repro stream``
transcripts.  Second, the shutdown contracts are exercised against real
subprocesses with real signals: SIGTERM against a loaded server must
drain every session to a checkpoint whose ``state_sha`` equals an
uninterrupted direct run (queued crowd answers are paid for; none may be
lost), and SIGTERM against ``repro stream`` must flush a whole final
checkpoint (no torn manifest tail) that resumes byte-identically.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.core import PowerConfig
from repro.data import save_csv
from repro.stream import StreamingResolver
from repro.stream.snapshot import SnapshotStore

CLIENT_BATCH_LINE = re.compile(
    r"^batch (\d+): \+(\d+) records, (\d+) pairs, (\d+) questions, "
    r"clusters=(\d+)$"
)
CLIENT_CHECKPOINT_LINE = re.compile(
    r"^checkpoint : batch (\d+), (\d+) records, (\d+) questions, "
    r"state_sha [0-9a-f]{12}$"
)
DRAINED_LINE = re.compile(
    r"^drained session ([A-Za-z0-9._-]+): batch (\d+), "
    r"state_sha ([0-9a-f]{64})$"
)


@pytest.fixture()
def stream_csv(tmp_path, small_table):
    path = tmp_path / "stream.csv"
    save_csv(small_table, path)
    return path


def _run(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def _direct_sha(small_table, tmp_path, name, batch_size=50, seed=0):
    resolver = StreamingResolver(
        small_table.attributes,
        config=PowerConfig(seed=seed),
        name=name,
        checkpoint_dir=tmp_path / f"direct-{name}",
    )
    records = list(small_table)
    for start in range(0, len(records), batch_size):
        chunk = records[start : start + batch_size]
        resolver.add_batch(
            [record.values for record in chunk],
            entity_ids=[record.entity_id for record in chunk],
        )
    return resolver.checkpoint()["state_sha"]


class TestClientTranscript:
    def test_spawned_ingest_transcript(self, stream_csv, tmp_path, capsys):
        code, out, _ = _run(
            ["client", "ingest-csv", "--spawn", str(tmp_path / "root"),
             "--session", "s1", "--input", str(stream_csv),
             "--batch-size", "20"],
            capsys,
        )
        assert code == 0
        lines = out.splitlines()
        assert lines[0] == "created session s1 (0 records, batch 0)"
        batch_lines = [line for line in lines if line.startswith("batch ")]
        assert len(batch_lines) == 3  # 60 records / 20 per batch
        for number, line in enumerate(batch_lines, start=1):
            match = CLIENT_BATCH_LINE.match(line)
            assert match, line
            assert int(match.group(1)) == number
        assert CLIENT_CHECKPOINT_LINE.match(lines[-1]), lines[-1]

    def test_second_spawn_attaches_and_serves_clusters(
        self, stream_csv, tmp_path, capsys
    ):
        """The checkpoint root is the durable store: a freshly spawned
        server restores the session and continues where the last left off."""
        root = tmp_path / "root"
        argv = ["client", "ingest-csv", "--spawn", str(root),
                "--session", "s1", "--input", str(stream_csv)]
        assert _run(argv, capsys)[0] == 0
        # Re-running the same ingest attaches and finds nothing new to add.
        code, out, _ = _run(argv, capsys)
        assert code == 0
        assert "attached to session s1 (60 records, batch 2)" in out
        code, out, _ = _run(
            ["client", "clusters", "--spawn", str(root), "--session", "s1"],
            capsys,
        )
        assert code == 0
        assert re.search(
            r"clusters   : \d+ over 60 records \(\d+ questions, "
            r"\d+\.\d\d USD\)",
            out,
        )

    def test_health_action(self, tmp_path, capsys):
        code, out, _ = _run(
            ["client", "health", "--spawn", str(tmp_path / "root")], capsys
        )
        assert code == 0
        assert "status        : ok" in out
        assert "protocol      : 1" in out
        assert "known_sessions: 0" in out

    def test_metrics_action_emits_prometheus_text(self, tmp_path, capsys):
        code, out, _ = _run(
            ["client", "metrics", "--spawn", str(tmp_path / "root")], capsys
        )
        assert code == 0
        # A fresh server's exposition carries the seeded session gauges
        # (request counters appear only after a completed request).
        assert "# TYPE repro_serve_sessions_known gauge" in out
        assert "repro_serve_sessions_resident 0" in out

    def test_session_actions_require_session(self, capsys):
        code, _, err = _run(["client", "clusters", "--port", "1"], capsys)
        assert code == 2
        assert "--session" in err

    def test_client_requires_port_or_spawn(self, capsys):
        code, _, err = _run(
            ["client", "health"], capsys
        )
        assert code == 2
        assert "--port" in err

    def test_ingest_requires_input(self, capsys):
        code, _, err = _run(
            ["client", "ingest-csv", "--port", "1", "--session", "x"], capsys
        )
        assert code == 2
        assert "--input" in err


class TestServeDrain:
    def test_sigterm_drains_every_session_without_losing_answers(
        self, stream_csv, small_table, tmp_path, capsys
    ):
        """kill -TERM against a server holding two loaded sessions: every
        drained state_sha must equal an uninterrupted direct run's."""
        root = tmp_path / "root"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--checkpoint-root", str(root), "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"serving on [^:]+:(\d+)", banner)
            assert match, banner
            port = match.group(1)
            for session in ("s1", "s2"):
                code, _, _ = _run(
                    ["client", "ingest-csv", "--port", port,
                     "--session", session, "--input", str(stream_csv)],
                    capsys,
                )
                assert code == 0
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        drained = {
            m.group(1): m.group(3)
            for m in map(DRAINED_LINE.match, out.splitlines())
            if m
        }
        assert set(drained) == {"s1", "s2"}
        assert "drained 2 session(s); bye" in out
        for session, sha in drained.items():
            assert sha == _direct_sha(small_table, tmp_path, session)


class TestStreamGracefulShutdown:
    def test_sigterm_flushes_checkpoint_and_resumes_cleanly(
        self, stream_csv, small_table, tmp_path, capsys
    ):
        """SIGTERM mid-stream: the run stops after the current batch with a
        whole (untorn) manifest, and --resume completes byte-identically to
        an uninterrupted run."""
        straight_dir = tmp_path / "straight"
        code, straight_out, _ = _run(
            ["stream", str(stream_csv), "--batch-size", "5",
             "--checkpoint-dir", str(straight_dir), "--seed", "0"],
            capsys,
        )
        assert code == 0
        straight_lines = straight_out.splitlines()
        straight_batches = [
            line for line in straight_lines if line.startswith("batch ")
        ]
        summary_start = len(straight_batches)

        killed_dir = tmp_path / "killed"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "stream", str(stream_csv),
             "--batch-size", "5", "--checkpoint-dir", str(killed_dir),
             "--seed", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            first = proc.stdout.readline()  # blocks until batch 1 is done
            assert first.startswith("batch 1:"), first
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        killed_out = first + out
        assert "stopped cleanly after batch" in killed_out
        assert "resume with --resume" in killed_out
        killed_batches = [
            line for line in killed_out.splitlines()
            if line.startswith("batch ")
        ]
        ran = len(killed_batches)
        assert 1 <= ran < len(straight_batches)  # genuinely interrupted
        # The interrupted prefix matches the uninterrupted run exactly.
        assert killed_batches == straight_batches[:ran]
        # The manifest tail is whole: nothing to repair.
        _, checkpoints, truncated = SnapshotStore(killed_dir).read_manifest(
            repair=False
        )
        assert truncated is False
        assert checkpoints[-1]["batch"] == ran

        code, resumed_out, _ = _run(
            ["stream", str(stream_csv), "--batch-size", "5",
             "--checkpoint-dir", str(killed_dir), "--seed", "0", "--resume"],
            capsys,
        )
        assert code == 0
        resumed_lines = resumed_out.splitlines()
        assert resumed_lines[0].startswith(f"resumed from batch {ran}")
        # Remaining batches and the summary: byte-identical to straight.
        assert resumed_lines[1:] == straight_lines[ran:]
        assert straight_lines[summary_start:] == resumed_lines[
            1 + len(straight_batches) - ran :
        ]
