"""Tests for the pairwise quality metrics (§7.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pairwise_quality

PAIRS = st.sets(
    st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(lambda p: p[0] != p[1]),
    max_size=15,
)


class TestPairwiseQuality:
    def test_perfect_prediction(self):
        gold = {(0, 1), (2, 3)}
        report = pairwise_quality(gold, gold)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f_measure == 1.0

    def test_half_precision(self):
        report = pairwise_quality({(0, 1), (2, 3)}, {(0, 1)})
        assert report.precision == 0.5
        assert report.recall == 1.0
        assert report.f_measure == pytest.approx(2 / 3)

    def test_half_recall(self):
        report = pairwise_quality({(0, 1)}, {(0, 1), (2, 3)})
        assert report.precision == 1.0
        assert report.recall == 0.5

    def test_empty_prediction(self):
        report = pairwise_quality(set(), {(0, 1)})
        assert report.precision == 1.0  # vacuous
        assert report.recall == 0.0
        assert report.f_measure == 0.0

    def test_empty_gold(self):
        report = pairwise_quality({(0, 1)}, set())
        assert report.recall == 1.0
        assert report.precision == 0.0

    def test_orientation_insensitive(self):
        report = pairwise_quality({(1, 0)}, {(0, 1)})
        assert report.f_measure == 1.0

    def test_counts(self):
        report = pairwise_quality({(0, 1), (2, 3)}, {(0, 1), (4, 5)})
        assert report.true_positives == 1
        assert report.false_positives == 1
        assert report.false_negatives == 1

    def test_str_contains_scores(self):
        text = str(pairwise_quality({(0, 1)}, {(0, 1)}))
        assert "F1=1.000" in text

    @settings(max_examples=50)
    @given(PAIRS, PAIRS)
    def test_metric_bounds(self, predicted, gold):
        report = pairwise_quality(predicted, gold)
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
        assert 0.0 <= report.f_measure <= 1.0
        # The harmonic mean is bounded by its arguments (up to float noise).
        assert report.f_measure <= max(report.precision, report.recall) + 1e-9
