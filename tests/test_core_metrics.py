"""Tests for the pairwise quality metrics (§7.1)."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import pairwise_quality

PAIRS = st.sets(
    st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(lambda p: p[0] != p[1]),
    max_size=15,
)


class TestPairwiseQuality:
    def test_perfect_prediction(self):
        gold = {(0, 1), (2, 3)}
        report = pairwise_quality(gold, gold)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f_measure == 1.0

    def test_half_precision(self):
        report = pairwise_quality({(0, 1), (2, 3)}, {(0, 1)})
        assert report.precision == 0.5
        assert report.recall == 1.0
        assert report.f_measure == pytest.approx(2 / 3)

    def test_half_recall(self):
        report = pairwise_quality({(0, 1)}, {(0, 1), (2, 3)})
        assert report.precision == 1.0
        assert report.recall == 0.5

    def test_empty_prediction(self):
        report = pairwise_quality(set(), {(0, 1)})
        assert report.precision == 1.0  # vacuous
        assert report.recall == 0.0
        assert report.f_measure == 0.0

    def test_empty_gold(self):
        report = pairwise_quality({(0, 1)}, set())
        assert report.recall == 1.0
        assert report.precision == 0.0

    def test_orientation_insensitive(self):
        report = pairwise_quality({(1, 0)}, {(0, 1)})
        assert report.f_measure == 1.0

    def test_counts(self):
        report = pairwise_quality({(0, 1), (2, 3)}, {(0, 1), (4, 5)})
        assert report.true_positives == 1
        assert report.false_positives == 1
        assert report.false_negatives == 1

    def test_str_contains_scores(self):
        text = str(pairwise_quality({(0, 1)}, {(0, 1)}))
        assert "F1=1.000" in text

    @settings(max_examples=50)
    @given(PAIRS, PAIRS)
    def test_metric_bounds(self, predicted, gold):
        report = pairwise_quality(predicted, gold)
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
        assert 0.0 <= report.f_measure <= 1.0
        # The harmonic mean is bounded by its arguments (up to float noise).
        assert report.f_measure <= max(report.precision, report.recall) + 1e-9


class TestQualityProperties:
    """Hypothesis laws for the pairwise metrics."""

    @settings(max_examples=60)
    @given(PAIRS, PAIRS)
    def test_f1_symmetry(self, predicted, gold):
        """Swapping predicted and gold swaps P and R but preserves F1."""
        forward = pairwise_quality(predicted, gold)
        backward = pairwise_quality(gold, predicted)
        assert forward.precision == backward.recall
        assert forward.recall == backward.precision
        assert forward.f_measure == pytest.approx(backward.f_measure)

    @settings(max_examples=60)
    @given(PAIRS, PAIRS)
    def test_f1_zero_iff_no_true_positive(self, predicted, gold):
        """With a non-trivial instance, F1 = 0 exactly when TP = 0.

        Both-empty is the vacuous exception: P = R = 1 by convention even
        though TP = 0, so it is excluded via ``assume``.
        """
        assume(predicted or gold)
        report = pairwise_quality(predicted, gold)
        if report.true_positives == 0:
            assert report.f_measure == 0.0
        else:
            assert report.f_measure > 0.0

    @settings(max_examples=60)
    @given(PAIRS)
    def test_self_comparison_is_perfect(self, pairs):
        report = pairwise_quality(pairs, pairs)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f_measure == 1.0
        assert report.false_positives == report.false_negatives == 0

    @settings(max_examples=60)
    @given(PAIRS, PAIRS)
    def test_counts_are_consistent(self, predicted, gold):
        report = pairwise_quality(predicted, gold)
        canonical_predicted = {tuple(sorted(p)) for p in predicted}
        canonical_gold = {tuple(sorted(p)) for p in gold}
        assert report.true_positives + report.false_positives == len(canonical_predicted)
        assert report.true_positives + report.false_negatives == len(canonical_gold)
