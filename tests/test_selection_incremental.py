"""Selector-level tests for the incremental fast paths and their knobs."""

import numpy as np
import pytest

from repro.core import PowerConfig
from repro.crowd import PerfectCrowd, SimulatedCrowd, WorkerPool
from repro.exceptions import ConfigurationError
from repro.graph import GroupedGraph, PairGraph, split_grouping
from repro.selection import SELECTORS

from conftest import random_vectors

PATH_SELECTORS = ["single-path", "multi-path", "power"]


def make_workload(seed: int, n: int = 60):
    vectors = random_vectors(seed, n, 3)
    pairs = [(2 * i, 2 * i + 1) for i in range(n)]
    truth = {pair: bool(vectors[v].mean() > 0.5) for v, pair in enumerate(pairs)}
    return pairs, vectors, truth


def run_selector(name, pairs, vectors, truth, incremental, grouped=False, seed=0):
    graph = PairGraph(pairs, vectors)
    if grouped:
        graph = GroupedGraph(graph, split_grouping(vectors, 0.1))
    crowd = SimulatedCrowd(truth, WorkerPool(seed=seed))
    return SELECTORS[name](seed=seed, incremental=incremental).run(
        graph, crowd.session()
    )


class TestByteIdentical:
    @pytest.mark.parametrize("name", PATH_SELECTORS)
    def test_same_transcript_and_coloring(self, name):
        """incremental=True must change nothing observable: same questions
        in the same order, same final colors, same labels."""
        pairs, vectors, truth = make_workload(seed=7)
        fast = run_selector(name, pairs, vectors, truth, incremental=True)
        slow = run_selector(name, pairs, vectors, truth, incremental=False)
        assert fast.state.asked_order == slow.state.asked_order
        assert np.array_equal(fast.state.colors, slow.state.colors)
        assert fast.labels == slow.labels
        assert (fast.questions, fast.iterations) == (slow.questions, slow.iterations)

    @pytest.mark.parametrize("name", ["single-path", "multi-path"])
    def test_same_transcript_on_grouped_graph(self, name):
        pairs, vectors, truth = make_workload(seed=11)
        fast = run_selector(name, pairs, vectors, truth, incremental=True, grouped=True)
        slow = run_selector(name, pairs, vectors, truth, incremental=False, grouped=True)
        assert fast.state.asked_order == slow.state.asked_order
        assert fast.labels == slow.labels


class TestTelemetry:
    def test_extras_carry_selection_telemetry(self):
        pairs, vectors, truth = make_workload(seed=3)
        result = run_selector("single-path", pairs, vectors, truth, incremental=True)
        telemetry = result.extras["selection"]
        assert telemetry["incremental"] is True
        assert telemetry["rounds"] >= 1
        assert telemetry["cover_seconds"] >= 0.0
        assert telemetry["propagate_seconds"] >= 0.0
        engine = telemetry["engine"]
        assert engine["covers"] >= 1
        assert engine["scratch_builds"] >= 1  # the first cover is a scratch build

    def test_reference_run_reports_incremental_off(self):
        pairs, vectors, truth = make_workload(seed=3)
        result = run_selector("single-path", pairs, vectors, truth, incremental=False)
        assert result.extras["selection"]["incremental"] is False

    def test_perfect_crowd_also_reports(self):
        pairs, vectors, truth = make_workload(seed=5)
        graph = PairGraph(pairs, vectors)
        result = SELECTORS["multi-path"]().run(graph, PerfectCrowd(truth).session())
        assert result.extras["selection"]["rounds"] == result.iterations


class TestConfigKnobs:
    def test_defaults(self):
        config = PowerConfig()
        assert config.use_incremental_selection is True
        assert config.reachability_index == "auto"
        assert config.reachability_limit_bytes() is None

    def test_off_maps_to_zero_budget(self):
        config = PowerConfig(reachability_index="off")
        assert config.reachability_limit_bytes() == 0

    def test_explicit_byte_budget(self):
        config = PowerConfig(reachability_index=1 << 20)
        assert config.reachability_limit_bytes() == 1 << 20

    @pytest.mark.parametrize("bad", ["on", 0, -5, 1.5])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            PowerConfig(reachability_index=bad)

    def test_zero_budget_forces_reference_path(self):
        pairs, vectors, truth = make_workload(seed=9)
        graph = PairGraph(pairs, vectors)
        selector = SELECTORS["single-path"](incremental=True, reachability_bytes=0)
        result = selector.run(graph, PerfectCrowd(truth).session())
        assert graph.reachability is None
        assert result.extras["selection"]["incremental"] is False
