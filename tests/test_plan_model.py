"""Cost-model laws: non-negativity and monotonicity, as theorems.

:class:`repro.plan.model.CostModel` clamps its coefficients to be
non-negative at construction, which upgrades "predictions are
non-negative and monotone in units" from an empirical observation about
calibrated hosts to a property of *every* constructible model.  The
hypothesis sweeps here pin that down, along with the unit formulas'
monotonicity in each operand.
"""

from __future__ import annotations

import inspect
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.plan.model import (
    STAGES,
    UNIT_FORMULAS,
    CostModel,
    fit_affine,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
units = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
operand = st.integers(min_value=0, max_value=5000)


def _arity(stage: str) -> int:
    return len(inspect.signature(UNIT_FORMULAS[stage]).parameters)


class TestCostModelLaws:
    @given(stage=st.sampled_from(STAGES), c0=finite, c1=finite, u=units)
    @settings(max_examples=200, deadline=None)
    def test_predictions_never_negative(self, stage, c0, c1, u):
        model = CostModel(stage=stage, c0=c0, c1=c1)
        assert model.predict(u) >= 0.0

    @given(stage=st.sampled_from(STAGES), c0=finite, c1=finite, lo=units, hi=units)
    @settings(max_examples=200, deadline=None)
    def test_predictions_monotone_in_units(self, stage, c0, c1, lo, hi):
        model = CostModel(stage=stage, c0=c0, c1=c1)
        lo, hi = sorted((lo, hi))
        assert model.predict(lo) <= model.predict(hi)

    @given(stage=st.sampled_from(STAGES), c0=finite, c1=finite)
    @settings(max_examples=100, deadline=None)
    def test_coefficients_clamped_at_construction(self, stage, c0, c1):
        model = CostModel(stage=stage, c0=c0, c1=c1)
        assert model.c0 >= 0.0
        assert model.c1 >= 0.0

    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(stage="warp-drive", c0=0.0, c1=0.0)


class TestUnitFormulas:
    def test_every_stage_has_a_formula(self):
        assert set(UNIT_FORMULAS) == set(STAGES)

    @given(stage=st.sampled_from(STAGES), a=operand, b=operand)
    @settings(max_examples=200, deadline=None)
    def test_formulas_finite_and_non_negative(self, stage, a, b):
        args = (a, b)[: _arity(stage)]
        value = UNIT_FORMULAS[stage](*args)
        assert math.isfinite(value)
        assert value >= 0.0

    @given(stage=st.sampled_from(STAGES), lo=operand, hi=operand, other=operand)
    @settings(max_examples=200, deadline=None)
    def test_formulas_monotone_in_first_operand(self, stage, lo, hi, other):
        lo, hi = sorted((lo, hi))
        rest = (other,)[: _arity(stage) - 1]
        formula = UNIT_FORMULAS[stage]
        assert formula(lo, *rest) <= formula(hi, *rest)

    @given(stage=st.sampled_from(STAGES), first=operand, lo=operand, hi=operand)
    @settings(max_examples=200, deadline=None)
    def test_formulas_monotone_in_second_operand(self, stage, first, lo, hi):
        if _arity(stage) < 2:
            return
        lo, hi = sorted((lo, hi))
        formula = UNIT_FORMULAS[stage]
        assert formula(first, lo) <= formula(first, hi)


class TestFitAffine:
    def test_two_point_fit_recovers_line(self):
        c0, c1 = fit_affine([(0.0, 1.0), (10.0, 21.0)])
        assert c0 == pytest.approx(1.0, abs=1e-9)
        assert c1 == pytest.approx(2.0, abs=1e-9)

    def test_negative_slope_clamped(self):
        _, c1 = fit_affine([(0.0, 5.0), (10.0, 1.0)])
        assert c1 == 0.0

    def test_single_sample_becomes_pure_rate(self):
        c0, c1 = fit_affine([(10.0, 2.0)])
        assert c0 == 0.0
        assert c1 == pytest.approx(0.2)

    def test_empty_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_affine([])
