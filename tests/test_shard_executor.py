"""Fault-path tests for :class:`repro.shard.ShardExecutor`.

The executor's contract: every task is a pure function of its spec, so a
task that raises, crashes its worker process, or hangs past the timeout is
retried — and, with the retry budget exhausted, re-run inline in the
coordinator — without changing a single output byte.  These tests inject
deterministic faults (file-backed attempt counters from
:class:`repro.shard.worker.FaultSpec`) and assert byte-identical results
plus honest telemetry.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import PowerConfig, PowerResolver
from repro.exceptions import ConfigurationError
from repro.shard import (
    FaultSpec,
    ShardExecutor,
    ShardedResolver,
    VectorTask,
    compute_vectors,
    merge_vector_chunks,
    questions_for_cents,
    split_question_budget,
    vertex_slices,
)
from repro.shard.worker import maybe_fault


def _square(task):
    """Module-level pure task (picklable): ``(value, fault) -> value**2``."""
    value, fault = task
    maybe_fault(fault)
    return value * value


def _fault(tmp_path, name, **kwargs) -> FaultSpec:
    return FaultSpec(path=str(tmp_path / name), **kwargs)


class TestInlineExecution:
    def test_workers_zero_runs_inline(self):
        with ShardExecutor(workers=0) as executor:
            assert executor.run(_square, [(2, None), (3, None)]) == [4, 9]
        assert executor.stats.tasks == 2
        assert executor.stats.retries == 0

    def test_inline_retry_then_success(self, tmp_path):
        fault = _fault(tmp_path, "inline", limit=2)
        with ShardExecutor(workers=0, retries=2) as executor:
            assert executor.run(_square, [(5, fault)]) == [25]
        assert executor.stats.retries == 2

    def test_inline_retries_exhausted_raises(self, tmp_path):
        fault = _fault(tmp_path, "forever", limit=99)
        with ShardExecutor(workers=0, retries=1) as executor:
            with pytest.raises(RuntimeError, match="injected fault"):
                executor.run(_square, [(5, fault)])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardExecutor(workers=-1)
        with pytest.raises(ConfigurationError):
            ShardExecutor(retries=-1)
        with pytest.raises(ConfigurationError):
            ShardExecutor(timeout=0)
        with ShardExecutor() as executor:
            with pytest.raises(ConfigurationError):
                executor.run(_square, [(1, None)], weights=[1.0, 2.0])


class TestPoolFaultPaths:
    def test_exception_is_retried(self, tmp_path):
        fault = _fault(tmp_path, "raise", limit=1, kind="raise")
        with ShardExecutor(workers=1, retries=2) as executor:
            result = executor.run(_square, [(7, fault), (8, None)])
        assert result == [49, 64]
        assert executor.stats.retries >= 1
        assert executor.stats.fallbacks == 0

    def test_worker_crash_is_retried_on_fresh_pool(self, tmp_path):
        """``os._exit`` in the worker → BrokenProcessPool → fresh pool."""
        fault = _fault(tmp_path, "crash", limit=1, kind="exit")
        with ShardExecutor(workers=1, retries=3) as executor:
            result = executor.run(_square, [(6, fault)])
        assert result == [36]
        assert executor.stats.broken_pools >= 1
        assert executor.stats.retries >= 1

    def test_exhausted_retries_fall_back_inline(self, tmp_path):
        """Crash past the retry budget → the coordinator runs the task.

        limit=2 with retries=1: pool attempts 1 and 2 die, the attempt
        budget is spent, and the inline fallback (attempt 3 > limit)
        succeeds — same bytes the healthy path would have produced.
        """
        fault = _fault(tmp_path, "fallback", limit=2, kind="exit")
        with ShardExecutor(workers=1, retries=1) as executor:
            result = executor.run(_square, [(9, fault)])
        assert result == [81]
        assert executor.stats.fallbacks == 1
        # Two pool attempts + one inline attempt were recorded in the file.
        assert os.path.getsize(str(tmp_path / "fallback")) == 3

    def test_hung_worker_is_timed_out_and_retried(self, tmp_path):
        fault = _fault(tmp_path, "hang", limit=1, kind="hang", hang_seconds=30.0)
        with ShardExecutor(workers=1, retries=2, timeout=0.5) as executor:
            result = executor.run(_square, [(4, fault)])
        assert result == [16]
        assert executor.stats.timeouts >= 1

    def test_largest_first_dispatch_keeps_task_order(self):
        with ShardExecutor(workers=1) as executor:
            tasks = [(value, None) for value in range(6)]
            weights = [1.0, 5.0, 3.0, 2.0, 4.0, 0.5]
            assert executor.run(_square, tasks, weights=weights) == [
                value * value for value in range(6)
            ]


class TestBitIdenticalUnderFaults:
    def test_vector_chunks_survive_crashes_byte_identical(
        self, small_table, tmp_path
    ):
        """Crashing vector workers must not change one byte of the matrix."""
        resolver = PowerResolver(PowerConfig(seed=0))
        pairs = resolver.candidate_pairs(small_table)
        reference = resolver.similarity_vectors(small_table, pairs)
        config = resolver.similarity_config(small_table)
        tasks = []
        for index, (lo, hi) in enumerate(vertex_slices(len(pairs), 4)):
            fault = (
                _fault(tmp_path, f"chunk{index}", limit=1, kind="exit")
                if index % 2 == 0
                else None
            )
            tasks.append(
                VectorTask(
                    start=lo,
                    pairs=tuple(pairs[lo:hi]),
                    table=small_table,
                    config=config,
                    fault=fault,
                )
            )
        with ShardExecutor(workers=2, retries=2) as executor:
            chunks = executor.run(compute_vectors, tasks)
        merged = merge_vector_chunks(chunks)
        np.testing.assert_array_equal(merged, reference)
        assert executor.stats.broken_pools >= 1

    def test_resolver_with_processes_matches_serial(self, small_table):
        """End-to-end: 2 worker processes, exact mode, bit-identical."""
        serial = PowerResolver(PowerConfig(seed=0)).resolve(small_table)
        sharded = ShardedResolver(
            PowerConfig(seed=0, shards=2), workers=2
        ).resolve(small_table)
        assert sharded.questions == serial.questions
        assert sharded.iterations == serial.iterations
        assert sharded.cost_cents == serial.cost_cents
        assert sharded.selection.labels == serial.selection.labels
        assert sharded.matches == serial.matches
        assert sharded.clusters == serial.clusters


class TestBudgetSplit:
    def test_split_sums_to_total_and_is_proportional(self):
        split = split_question_budget(10, [30, 60, 10])
        assert sum(split) == 10
        assert split == [3, 6, 1]

    def test_largest_remainder_tiebreak(self):
        assert split_question_budget(1, [1, 1]) == [1, 0]
        assert split_question_budget(0, [5, 5]) == [0, 0]
        assert split_question_budget(7, []) == []
        assert split_question_budget(4, [0, 0]) == [0, 0]

    def test_split_rejects_negatives(self):
        with pytest.raises(ConfigurationError):
            split_question_budget(-1, [1])
        with pytest.raises(ConfigurationError):
            split_question_budget(1, [-1])

    def test_questions_for_cents_inverts_billing(self):
        from repro.engine.budget import BudgetGuard

        for cents in (0, 10, 49, 50, 100, 1234):
            questions = questions_for_cents(cents)
            guard = BudgetGuard(max_cents=cents)
            assert guard.affordable_questions(
                asked=0,
                requested=questions + 1,
                pairs_per_hit=10,
                cents_per_hit=10,
                assignments=5,
            ) == questions
