"""Tests for the Split and Greedy grouping algorithms (§4.2, Appendix A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, GraphError
from repro.graph import (
    greedy_grouping,
    is_group,
    maximal_groups,
    split_grouping,
    validate_grouping,
)

from conftest import random_vectors


def vectors_strategy():
    return st.tuples(
        st.integers(min_value=0, max_value=35),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10_000),
    ).map(lambda args: random_vectors(args[2], args[0], args[1]))


EPSILONS = st.sampled_from([0.05, 0.1, 0.2, 0.3])


class TestIsGroup:
    def test_within_epsilon(self):
        vectors = np.array([[0.5, 0.5], [0.55, 0.45]])
        assert is_group(vectors, [0, 1], 0.1)

    def test_exceeds_epsilon(self):
        vectors = np.array([[0.5, 0.5], [0.7, 0.5]])
        assert not is_group(vectors, [0, 1], 0.1)

    def test_empty_not_a_group(self):
        assert not is_group(np.empty((0, 2)), [], 0.1)


class TestSplitGrouping:
    @settings(max_examples=40, deadline=None)
    @given(vectors_strategy(), EPSILONS)
    def test_always_valid_partition(self, vectors, epsilon):
        groups = split_grouping(vectors, epsilon)
        validate_grouping(vectors, groups, epsilon)

    def test_all_identical_vectors_one_group(self):
        vectors = np.tile([0.5, 0.5], (10, 1))
        assert split_grouping(vectors, 0.1) == [list(range(10))]

    def test_epsilon_zero_groups_exact_duplicates(self):
        vectors = np.array([[0.5], [0.5], [0.7]])
        groups = split_grouping(vectors, 0.0)
        assert sorted(map(sorted, groups)) == [[0, 1], [2]]

    def test_epsilon_one_single_group(self):
        vectors = random_vectors(1, 20, 3)
        assert len(split_grouping(vectors, 1.0)) == 1

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            split_grouping(np.array([[0.5]]), -0.1)

    def test_empty_input(self):
        assert split_grouping(np.empty((0, 2)), 0.1) == []

    def test_more_groups_for_smaller_epsilon(self, small_bundle):
        _, _, vectors, _ = small_bundle
        coarse = split_grouping(vectors, 0.2)
        fine = split_grouping(vectors, 0.05)
        assert len(fine) >= len(coarse)

    def test_deterministic(self, small_bundle):
        _, _, vectors, _ = small_bundle
        assert split_grouping(vectors, 0.1) == split_grouping(vectors, 0.1)


class TestGreedyGrouping:
    @settings(max_examples=25, deadline=None)
    @given(vectors_strategy(), EPSILONS)
    def test_always_valid_partition(self, vectors, epsilon):
        groups = greedy_grouping(vectors, epsilon)
        validate_grouping(vectors, groups, epsilon)

    @settings(max_examples=25, deadline=None)
    @given(vectors_strategy(), EPSILONS)
    def test_comparable_group_counts_to_split(self, vectors, epsilon):
        """Greedy's ln|V| set cover usually beats the Split heuristic; it can
        lose on adversarial inputs but never by much (the paper observes
        Split generating 'a few more groups than Greedy')."""
        greedy = greedy_grouping(vectors, epsilon)
        split = split_grouping(vectors, epsilon)
        assert len(greedy) <= max(len(split) * 2, len(split) + 3)

    def test_candidate_cap(self):
        vectors = random_vectors(0, 30, 3)
        with pytest.raises(ConfigurationError):
            greedy_grouping(vectors, 0.3, max_candidates=1)

    def test_empty_input(self):
        assert greedy_grouping(np.empty((0, 2)), 0.1) == []


class TestMaximalGroups:
    def test_one_dimensional_windows(self):
        vectors = np.array([[1.0], [0.95], [0.5], [0.45], [0.4]])
        groups = {frozenset(g) for g in maximal_groups(vectors, 0.1)}
        assert frozenset({0, 1}) in groups
        assert frozenset({2, 3, 4}) in groups

    def test_every_maximal_group_is_valid(self):
        vectors = random_vectors(7, 25, 2)
        for group in maximal_groups(vectors, 0.15):
            assert is_group(vectors, sorted(group), 0.15)

    def test_join_covers_all_vertices(self):
        vectors = random_vectors(8, 25, 3)
        union = set().union(*maximal_groups(vectors, 0.1))
        assert union == set(range(25))


class TestValidateGrouping:
    def test_detects_overlap(self):
        vectors = np.array([[0.5], [0.5]])
        with pytest.raises(GraphError, match="two groups"):
            validate_grouping(vectors, [[0, 1], [1]], 0.1)

    def test_detects_missing_vertex(self):
        vectors = np.array([[0.5], [0.5]])
        with pytest.raises(GraphError, match="misses"):
            validate_grouping(vectors, [[0]], 0.1)

    def test_detects_epsilon_violation(self):
        vectors = np.array([[0.1], [0.9]])
        with pytest.raises(GraphError, match="epsilon"):
            validate_grouping(vectors, [[0, 1]], 0.1)

    def test_detects_empty_group(self):
        vectors = np.array([[0.5]])
        with pytest.raises(GraphError, match="empty"):
            validate_grouping(vectors, [[0], []], 0.1)
