"""Predicted-vs-observed reporting and the bounded feedback fold."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.plan.calibrate import default_profile
from repro.plan.explain import (
    observed_stage_seconds,
    prediction_report,
    render_plan,
    render_prediction_report,
)
from repro.plan.feedback import MAX_FOLD_FACTOR, fold_observations
from repro.plan.planner import TableStats, plan_for_stats

STATS = TableStats(rows=500, attrs=4, avg_tokens=8.0, est_pairs=400)


def spans_for(join_seconds: float = 0.01) -> list[dict]:
    """A minimal exported span tree shaped like a traced resolve."""
    return [
        {
            "name": "resolve",
            "wall_seconds": join_seconds + 0.02,
            "children": [
                {"name": "resolve.join", "wall_seconds": join_seconds,
                 "children": []},
                {"name": "resolve.vectorize", "wall_seconds": 0.005,
                 "children": []},
                {"name": "resolve.construct", "wall_seconds": 0.005,
                 "children": []},
            ],
        },
        {"name": "selection.run", "wall_seconds": 0.01, "children": []},
    ]


class TestExplain:
    def test_observed_seconds_sum_over_occurrences(self):
        spans = spans_for() + spans_for()
        observed = observed_stage_seconds(spans)
        assert observed["resolve.join"] == pytest.approx(0.02)
        assert observed["selection.run"] == pytest.approx(0.02)

    def test_prediction_report_joins_plan_to_spans(self):
        plan = plan_for_stats(STATS, default_profile())
        rows = prediction_report(plan, spans_for())
        stages = {row["stage"] for row in rows}
        # The chosen join/vectorize/selection stages all have spans;
        # shard_dispatch and stream_extend have none and must not appear.
        assert any(stage.startswith("join_") for stage in stages)
        assert not any(stage.startswith("shard") for stage in stages)
        for row in rows:
            assert row["observed_seconds"] > 0
            assert row["relative_error"] is not None

    def test_render_report_mentions_every_joined_stage(self):
        plan = plan_for_stats(STATS, default_profile())
        text = render_prediction_report(plan, spans_for())
        for row in prediction_report(plan, spans_for()):
            assert row["stage"] in text

    def test_render_report_without_spans_says_so(self):
        plan = plan_for_stats(STATS, default_profile())
        assert "no observed spans" in render_prediction_report(plan, [])

    def test_render_plan_is_complete(self):
        plan = plan_for_stats(STATS, default_profile())
        text = render_plan(plan)
        for knob in plan.knobs():
            assert knob in text
        assert "[profile: defaults]" in text


class TestFeedback:
    def test_fold_moves_coefficients_toward_observation(self):
        profile = default_profile()
        plan = plan_for_stats(STATS, profile)
        join_stage = plan.decision("join_method").prediction.stage
        predicted = plan.decision("join_method").prediction.seconds
        # Observe the join running 2x slower than predicted.
        folded = fold_observations(profile, plan, spans_for(2 * predicted))
        before = profile.model(join_stage)
        after = folded.model(join_stage)
        # learning_rate 0.5 toward a 2x ratio -> exactly 1.5x.
        assert after.c1 == pytest.approx(before.c1 * 1.5)
        assert folded.meta["feedback_folds"] == 1
        assert join_stage in folded.meta["last_fold_stages"]

    def test_fold_is_bounded(self):
        profile = default_profile()
        plan = plan_for_stats(STATS, profile)
        predicted = plan.decision("join_method").prediction.seconds
        join_stage = plan.decision("join_method").prediction.stage
        # A 1000x anomaly is clamped to MAX_FOLD_FACTOR before the
        # learning rate applies.
        folded = fold_observations(
            profile, plan, spans_for(1000 * predicted), learning_rate=1.0
        )
        before = profile.model(join_stage)
        after = folded.model(join_stage)
        assert after.c1 <= before.c1 * MAX_FOLD_FACTOR + 1e-12

    def test_input_profile_never_mutated(self):
        profile = default_profile()
        payload_before = profile.to_payload()
        plan = plan_for_stats(STATS, profile)
        fold_observations(profile, plan, spans_for())
        assert profile.to_payload() == payload_before

    def test_invalid_learning_rate_rejected(self):
        profile = default_profile()
        plan = plan_for_stats(STATS, profile)
        for rate in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError):
                fold_observations(profile, plan, spans_for(), learning_rate=rate)
