"""The mutation self-test: every seeded bug must be detected."""

from __future__ import annotations

import pytest

from repro.verify import MUTANTS, run_detection_battery, run_mutation_selftest
from repro.verify.mutation import detected_mutants


class TestMutationSelfTest:
    def test_catalog_has_at_least_six_mutants(self):
        assert len(MUTANTS) >= 6
        assert len({mutant.name for mutant in MUTANTS}) == len(MUTANTS)

    def test_pristine_battery_passes(self):
        run_detection_battery(seed=0)

    def test_every_mutant_is_detected(self):
        report = run_mutation_selftest(seed=0)
        assert report.passed, report.summary()
        assert set(detected_mutants(report)) == {mutant.name for mutant in MUTANTS}

    @pytest.mark.parametrize("seed", [1, 2])
    def test_detection_is_seed_robust(self, seed):
        report = run_mutation_selftest(seed=seed)
        assert report.passed, report.summary()

    def test_patches_are_fully_restored(self):
        import repro.crowd.platform as platform
        import repro.graph.construction as construction
        import repro.graph.matching as matching
        import repro.graph.topo as topo
        from repro.crowd.platform import CrowdSession
        from repro.graph.coloring import ColoringState
        from repro.graph.dag import PairGraph
        from repro.serve.sessions import SessionRegistry
        from repro.similarity.batch import TokenIndex

        before = (
            construction.blocked_dominance_lists,
            topo.topological_layers,
            matching.minimum_path_cover,
            platform.weighted_majority_vote,
            ColoringState.apply_answer,
            PairGraph.descendant_mask,
            CrowdSession.hits,
            TokenIndex.extend,
            SessionRegistry._restore_resolver,
        )
        run_mutation_selftest(seed=0)
        after = (
            construction.blocked_dominance_lists,
            topo.topological_layers,
            matching.minimum_path_cover,
            platform.weighted_majority_vote,
            ColoringState.apply_answer,
            PairGraph.descendant_mask,
            CrowdSession.hits,
            TokenIndex.extend,
            SessionRegistry._restore_resolver,
        )
        assert before == after

    def test_stale_index_is_caught_only_by_the_stream_step(self):
        """The stream-equivalence step has exclusive teeth for this mutant.

        Under ``stream-stale-index`` the full battery must scream *and* the
        failure must come from the stream check: the same battery with the
        stream step disabled sails through, because no other check ever
        exercises ``TokenIndex.extend``.
        """
        from repro.exceptions import VerificationError

        mutant = next(m for m in MUTANTS if m.name == "stream-stale-index")
        with mutant.activate():
            with pytest.raises(VerificationError, match="stream-equivalence"):
                run_detection_battery(seed=0)
        # The serve step is off too: it hosts the same resolver, so the
        # stale-index corruption hits server and reference runs alike and
        # only the stream step can see it.
        with mutant.activate():
            run_detection_battery(
                seed=0, include_stream=False, include_serve=False
            )

    def test_serve_leak_is_caught_only_by_the_serve_step(self):
        """Cross-session state leaks are invisible below the registry.

        ``serve-cross-session-leak`` makes the registry hand a restored
        session another live tenant's resolver — every single-session
        check still passes, so only the serve-equivalence step (which
        interleaves tenants through evict/restore cycles) can catch it.
        """
        from repro.exceptions import VerificationError

        mutant = next(
            m for m in MUTANTS if m.name == "serve-cross-session-leak"
        )
        with mutant.activate():
            with pytest.raises(VerificationError, match="serve-equivalence"):
                run_detection_battery(seed=0)
        with mutant.activate():
            run_detection_battery(seed=0, include_serve=False)

    def test_plan_mutant_is_caught_only_by_the_plan_step(self):
        """Transparency violations are invisible to every other check.

        ``plan-changes-results`` makes ``apply_plan`` flip a semantic knob
        (epsilon) alongside the performance knobs.  Every other battery
        step runs with ``plan="off"`` and never routes through
        ``apply_plan``, so only the plan-transparency step — which
        compares planned runs (including adversarial plans) against the
        static baseline bit-for-bit — can catch it.
        """
        from repro.exceptions import VerificationError

        mutant = next(m for m in MUTANTS if m.name == "plan-changes-results")
        with mutant.activate():
            with pytest.raises(VerificationError, match="plan-transparency"):
                run_detection_battery(seed=0)
        with mutant.activate():
            run_detection_battery(seed=0, include_plan=False)

    def test_each_mutant_actually_changes_behavior(self):
        """Activating a mutant must make the pristine battery fail loudly."""
        for mutant in MUTANTS:
            with mutant.activate():
                with pytest.raises(Exception):  # noqa: B017 - any loud failure counts
                    run_detection_battery(seed=0)
