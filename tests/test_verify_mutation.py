"""The mutation self-test: every seeded bug must be detected."""

from __future__ import annotations

import pytest

from repro.verify import MUTANTS, run_detection_battery, run_mutation_selftest
from repro.verify.mutation import detected_mutants


class TestMutationSelfTest:
    def test_catalog_has_at_least_six_mutants(self):
        assert len(MUTANTS) >= 6
        assert len({mutant.name for mutant in MUTANTS}) == len(MUTANTS)

    def test_pristine_battery_passes(self):
        run_detection_battery(seed=0)

    def test_every_mutant_is_detected(self):
        report = run_mutation_selftest(seed=0)
        assert report.passed, report.summary()
        assert set(detected_mutants(report)) == {mutant.name for mutant in MUTANTS}

    @pytest.mark.parametrize("seed", [1, 2])
    def test_detection_is_seed_robust(self, seed):
        report = run_mutation_selftest(seed=seed)
        assert report.passed, report.summary()

    def test_patches_are_fully_restored(self):
        import repro.crowd.platform as platform
        import repro.graph.construction as construction
        import repro.graph.matching as matching
        import repro.graph.topo as topo
        from repro.crowd.platform import CrowdSession
        from repro.graph.coloring import ColoringState
        from repro.graph.dag import PairGraph

        before = (
            construction.blocked_dominance_lists,
            topo.topological_layers,
            matching.minimum_path_cover,
            platform.weighted_majority_vote,
            ColoringState.apply_answer,
            PairGraph.descendant_mask,
            CrowdSession.hits,
        )
        run_mutation_selftest(seed=0)
        after = (
            construction.blocked_dominance_lists,
            topo.topological_layers,
            matching.minimum_path_cover,
            platform.weighted_majority_vote,
            ColoringState.apply_answer,
            PairGraph.descendant_mask,
            CrowdSession.hits,
        )
        assert before == after

    def test_each_mutant_actually_changes_behavior(self):
        """Activating a mutant must make the pristine battery fail loudly."""
        for mutant in MUTANTS:
            with mutant.activate():
                with pytest.raises(Exception):  # noqa: B017 - any loud failure counts
                    run_detection_battery(seed=0)
