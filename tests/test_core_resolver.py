"""End-to-end tests for PowerResolver."""

import pytest

from repro import PowerConfig, PowerResolver
from repro.crowd import PerfectCrowd
from repro.data import Table
from repro.data.ground_truth import pair_truth
from repro.exceptions import ConfigurationError, DataError


class TestPowerConfig:
    def test_defaults(self):
        config = PowerConfig()
        assert config.selector == "power"
        assert config.epsilon == 0.1
        assert config.error_tolerant

    def test_error_policy_construction(self):
        assert PowerConfig(error_tolerant=False).error_policy() is None
        policy = PowerConfig(confidence_threshold=0.9).error_policy()
        assert policy.confidence_threshold == 0.9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerConfig(pruning_threshold=0.0)
        with pytest.raises(ConfigurationError):
            PowerConfig(epsilon=-0.1)
        with pytest.raises(ConfigurationError):
            PowerConfig(assignments=0)


class TestResolver:
    def test_end_to_end_with_oracle(self, small_table, small_bundle):
        _, pairs, _, truth = small_bundle
        resolver = PowerResolver(PowerConfig(error_tolerant=False, seed=1))
        result = resolver.resolve(
            small_table, session=PerfectCrowd(truth).session()
        )
        assert result.quality.f_measure >= 0.95
        assert result.questions < len(pairs)
        assert result.candidate_pairs == pairs
        assert sum(len(c) for c in result.clusters) == len(small_table)

    def test_auto_built_crowd(self, small_table):
        result = PowerResolver(PowerConfig(seed=2)).resolve(
            small_table, worker_band="90"
        )
        assert result.quality is not None
        assert result.quality.f_measure > 0.5

    def test_non_grouped_configuration(self, small_table, small_bundle):
        _, _, _, truth = small_bundle
        resolver = PowerResolver(PowerConfig(epsilon=None, error_tolerant=False))
        result = resolver.resolve(small_table, session=PerfectCrowd(truth).session())
        # One genuine partial-order violation exists in this table.
        assert result.quality.f_measure >= 0.93

    def test_per_attribute_similarity_tuple(self, small_table):
        config = PowerConfig(similarity=("edit", "jaccard", "bigram"), seed=0)
        resolver = PowerResolver(config)
        pairs = resolver.candidate_pairs(small_table)
        assert pairs  # pipeline is at least constructible

    def test_unknown_selector(self, small_table):
        with pytest.raises(ConfigurationError):
            PowerResolver(PowerConfig(selector="magic")).resolve(small_table)

    def test_no_ground_truth_needs_session(self):
        table = Table.from_rows("t", ("a",), [("x",), ("x",)])
        with pytest.raises(DataError):
            PowerResolver().resolve(table)

    def test_pruning_everything_raises(self):
        table = Table.from_rows(
            "distinct", ("a",), [("alpha",), ("omega",)], entity_ids=[0, 1]
        )
        resolver = PowerResolver(PowerConfig(pruning_threshold=1.0))
        with pytest.raises(DataError):
            resolver.resolve(table)

    def test_all_selectors_work_end_to_end(self, small_table, small_bundle):
        _, _, _, truth = small_bundle
        for selector in ("random", "single-path", "multi-path", "power"):
            config = PowerConfig(selector=selector, error_tolerant=False, seed=3)
            result = PowerResolver(config).resolve(
                small_table, session=PerfectCrowd(truth).session()
            )
            assert result.quality.f_measure >= 0.9, selector

    def test_result_properties(self, small_table, small_bundle):
        _, _, _, truth = small_bundle
        result = PowerResolver(PowerConfig(seed=1)).resolve(
            small_table, session=PerfectCrowd(truth).session()
        )
        assert result.iterations == result.selection.iterations
        assert result.cost_cents == result.selection.cost_cents
        assert result.table_name == "small"


class TestSummary:
    def test_summary_contains_key_facts(self, small_table, small_bundle):
        _, _, _, truth = small_bundle
        result = PowerResolver(PowerConfig(seed=1)).resolve(
            small_table, session=PerfectCrowd(truth).session()
        )
        text = result.summary()
        assert "questions asked" in text
        assert f"candidate pairs  : {len(result.candidate_pairs)}" in text
        assert "F1=" in text

    def test_summary_without_ground_truth(self, small_table, small_bundle):
        _, pairs, _, truth = small_bundle
        stripped = Table.from_rows(
            "anon", small_table.attributes, [r.values for r in small_table]
        )
        resolver = PowerResolver(PowerConfig(seed=1))
        result = resolver.resolve(stripped, session=PerfectCrowd(truth).session())
        assert result.quality is None
        assert "quality" not in result.summary()
