"""The serve wire protocol and admission control, pinned exactly.

The protocol is an interface the same way the snapshot manifest is: a
future build must either speak it or refuse it loudly.  These tests pin
the codec (compact JSON lines, id echo), the closed op vocabulary, the
unknown-version rejection in both directions, and — with a hand-cranked
clock — the token-bucket refill arithmetic and the queue-depth shedding
prices, to the digit.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError, OverloadedError, ProtocolError
from repro.obs.clock import ManualClock
from repro.serve import (
    PROTOCOL_VERSION,
    AdmissionController,
    TokenBucket,
    decode_request,
    decode_response,
    encode,
    error_response,
    ok_response,
)
from repro.serve.admission import DEFAULT_BATCH_SECONDS, DRAIN_RETRY_AFTER


def _request(**fields):
    return {"v": PROTOCOL_VERSION, "id": 1, **fields}


class TestCodec:
    def test_encode_is_one_compact_json_line(self):
        raw = encode({"v": 1, "id": 7, "op": "healthz"})
        assert raw.endswith(b"\n")
        assert b" " not in raw  # compact separators
        assert json.loads(raw) == {"v": 1, "id": 7, "op": "healthz"}

    def test_request_roundtrip(self):
        message = _request(op="ingest", session="a", rows=[["x", "y"]])
        assert decode_request(encode(message)) == message

    def test_response_roundtrip_and_id_echo(self):
        response = ok_response(42, batch=3)
        decoded = decode_response(encode(response))
        assert decoded["id"] == 42
        assert decoded["ok"] is True
        assert decoded["batch"] == 3

    def test_error_response_carries_retry_after_only_when_given(self):
        plain = error_response(1, "bad_request", "nope")
        assert "retry_after" not in plain
        shed = error_response(1, "overloaded", "busy", retry_after=0.25)
        assert shed["retry_after"] == 0.25


class TestRequestValidation:
    def test_unknown_version_rejected(self):
        with pytest.raises(ProtocolError, match="not supported") as excinfo:
            decode_request(encode({"v": 99, "id": 1, "op": "healthz"}))
        assert excinfo.value.code == "unsupported_version"
        assert str(PROTOCOL_VERSION) in str(excinfo.value)

    def test_missing_version_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(encode({"id": 1, "op": "healthz"}))
        assert excinfo.value.code == "unsupported_version"

    def test_unknown_op_rejected_with_vocabulary(self):
        with pytest.raises(ProtocolError, match="create_session") as excinfo:
            decode_request(encode(_request(op="drop_tables")))
        assert excinfo.value.code == "unknown_op"

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError, match="requires field") as excinfo:
            decode_request(encode(_request(op="ingest", session="a")))
        assert excinfo.value.code == "missing_field"

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="sneaky") as excinfo:
            decode_request(
                encode(_request(op="checkpoint", session="a", sneaky=1))
            )
        assert excinfo.value.code == "unknown_field"

    def test_malformed_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(b"{not json\n")
        assert excinfo.value.code == "bad_json"

    def test_non_object_payload(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(b"[1, 2, 3]\n")
        assert excinfo.value.code == "bad_request"

    def test_empty_ingest_rows_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            decode_request(encode(_request(op="ingest", session="a", rows=[])))

    def test_entity_id_length_mismatch_rejected(self):
        with pytest.raises(ProtocolError, match="entity ids"):
            decode_request(
                encode(
                    _request(
                        op="ingest",
                        session="a",
                        rows=[["x"]],
                        entity_ids=[1, 2],
                    )
                )
            )

    def test_response_from_future_server_rejected(self):
        with pytest.raises(ProtocolError, match="version"):
            decode_response(encode({"v": 99, "id": 1, "ok": True}))


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.admit() for _ in range(4)] == [True, True, True, False]

    def test_refill_arithmetic_is_exact(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.admit()
        assert not bucket.admit()
        # 2 tokens/second: one full token is exactly 0.5s away.
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.25)
        assert not bucket.admit()
        assert bucket.retry_after() == pytest.approx(0.25)
        clock.advance(0.25)
        assert bucket.admit()

    def test_rate_zero_disables_limiting(self):
        bucket = TokenBucket(rate=0.0, clock=ManualClock())
        assert all(bucket.admit() for _ in range(100))
        assert bucket.retry_after() == 0.0

    def test_burst_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_queue_depth_sheds_with_ewma_price(self):
        control = AdmissionController(queue_depth=2, clock=ManualClock())
        control.admit(queued=0)
        control.admit(queued=1)
        with pytest.raises(OverloadedError) as excinfo:
            control.admit(queued=2)
        # Price before any observation: (queued + 1) * default estimate.
        assert excinfo.value.retry_after == pytest.approx(
            3 * DEFAULT_BATCH_SECONDS
        )

    def test_price_tracks_observed_batch_seconds(self):
        control = AdmissionController(queue_depth=1, clock=ManualClock())
        for _ in range(200):  # EWMA converges to the observed service time
            control.observe_batch_seconds(2.0)
        with pytest.raises(OverloadedError) as excinfo:
            control.admit(queued=1)
        assert excinfo.value.retry_after == pytest.approx(4.0, rel=1e-3)

    def test_drain_beats_everything(self):
        control = AdmissionController(queue_depth=8, clock=ManualClock())
        with pytest.raises(OverloadedError) as excinfo:
            control.admit(queued=0, draining=True)
        assert excinfo.value.retry_after == DRAIN_RETRY_AFTER

    def test_rate_limit_path(self):
        clock = ManualClock()
        control = AdmissionController(
            rate=1.0, burst=1.0, queue_depth=8, clock=clock
        )
        control.admit(queued=0)
        with pytest.raises(OverloadedError) as excinfo:
            control.admit(queued=0)
        assert excinfo.value.retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        control.admit(queued=0)

    def test_queue_depth_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="queue_depth"):
            AdmissionController(queue_depth=0)
