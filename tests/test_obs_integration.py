"""Integration tests: transparency, the telemetry migration, shard traces.

Four contracts pinned here:

* **transparency** — a pipeline run with tracing+metrics active is
  byte-identical to the plain run (the tentpole guarantee, also enforced
  by the ``observability-transparent`` battery checks);
* **telemetry migration** — the registry-backed
  :class:`repro.obs.Telemetry` produces the exact bytes of the retired
  ``repro.engine.telemetry`` dataclass, and the old import path still
  works (with a :class:`DeprecationWarning`);
* **shard determinism** — the merged trace of a multi-process run has the
  same structure as the inline (``workers=0``) run, and worker metrics
  fold into the coordinator's registry;
* **CLI plumbing** — ``--trace`` / ``--metrics-out`` write real artifacts
  and ``repro simulate`` prints the unified per-round table.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.core import PowerConfig, PowerResolver
from repro.obs import (
    Observability,
    Telemetry,
    activated,
    current,
    structure,
)
from repro.verify import oracles
from repro.verify.battery import random_instance


class TestTransparency:
    def test_selection_is_identical_with_observability_active(self):
        pairs, vectors = random_instance(3, num_vertices=20)
        oracles.check_observability_transparent("power", pairs, vectors, seed=3)

    def test_full_resolution_is_identical(self, small_table):
        plain = PowerResolver(PowerConfig(seed=0)).resolve(
            small_table, worker_band="90"
        )
        with activated(Observability(tracing=True, metrics=True)) as obs:
            observed = PowerResolver(PowerConfig(seed=0)).resolve(
                small_table, worker_band="90"
            )
        assert observed.matches == plain.matches
        assert observed.clusters == plain.clusters
        assert observed.questions == plain.questions
        assert observed.cost_cents == plain.cost_cents
        # And the run actually was instrumented:
        names = [name for _, name in structure(obs.tracer.export())]
        assert "resolve" in names and "selection.run" in names
        assert obs.registry.family("repro_selection_rounds_total")

    def test_handle_is_restored_after_the_block(self):
        before = current()
        with activated(Observability()):
            assert current() is not before
        assert current() is before
        with pytest.raises(RuntimeError):
            with activated(Observability()):
                raise RuntimeError("crash inside the block")
        assert current() is before  # a crashed run cannot leak a tracer


class TestTelemetryMigration:
    def expected_bytes(self):
        """The pre-migration dataclass's exact ``as_dict`` output."""
        return {
            "counters": {
                "posted": 7, "assigned": 6, "answered_units": 5,
                "answered_pairs": 4, "expired": 1, "abandoned": 1,
                "re_posts": 2, "failed_units": 0, "machine_answers": 1,
                "spam_hijacked": 0, "rounds": 3,
            },
            "wall_clock_seconds": 12.346,
            "billed_cents": 50,
            "repost_cents": 6.5,
            "total_spent_cents": 56.5,
            "recent_events": [
                {"type": "posted", "clock": 1.0, "unit": "u-1"},
            ],
        }

    def populated(self, **kwargs):
        telemetry = Telemetry(**kwargs)
        telemetry.posted = 7
        telemetry.assigned = 6
        telemetry.answered_units = 5
        telemetry.answered_pairs = 4
        telemetry.expired = 1
        telemetry.abandoned = 1
        telemetry.re_posts = 2
        telemetry.machine_answers = 1
        telemetry.rounds = 3
        telemetry.wall_clock_seconds = 12.3456
        telemetry.billed_cents = 50
        telemetry.repost_cents = 6.5
        telemetry.record_event("posted", 1.0, unit="u-1")
        return telemetry

    def test_as_dict_bytes_match_the_retired_dataclass(self):
        assert self.populated().as_dict() == self.expected_bytes()

    def test_write_bytes_match(self, tmp_path):
        path = self.populated().write(tmp_path / "t.json")
        expected = json.dumps(self.expected_bytes(), indent=2) + "\n"
        assert path.read_text(encoding="utf-8") == expected

    def test_attribute_semantics_survive(self):
        telemetry = Telemetry()
        telemetry.posted += 1
        telemetry.posted += 1
        assert telemetry.posted == 2
        assert isinstance(telemetry.posted, int)
        assert isinstance(telemetry.billed_cents, int)
        assert isinstance(telemetry.wall_clock_seconds, float)
        assert telemetry.total_spent_cents == 0
        with pytest.raises(AttributeError):
            telemetry.no_such_field  # noqa: B018 - the raise is the test

    def test_summary_format_unchanged(self):
        summary = self.populated().summary()
        assert summary == (
            "rounds=3 answered=4 re-posts=2 expired=1 abandoned=1 "
            "machine=1 spam=0 spent=0.56USD wall-clock=0.2min"
        )

    def test_counters_land_in_a_shared_registry(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        telemetry = Telemetry(registry=registry)
        telemetry.posted += 3
        assert registry.counter("repro_engine_posted_total").value == 3

    def test_event_log_stays_bounded(self):
        telemetry = Telemetry(event_log_limit=3)
        for index in range(10):
            telemetry.record_event("posted", float(index))
        assert len(telemetry.events) == 3
        assert telemetry.events[0]["clock"] == 7.0

    def test_old_import_path_warns_but_works(self):
        import repro.engine.telemetry as shim

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = shim.Telemetry
        assert legacy is Telemetry
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_engine_joins_the_active_registry(self):
        from repro.crowd.platform import PerfectCrowd
        from repro.engine import CrowdEngine, EngineConfig

        pairs = [(0, 1), (2, 3)]
        with activated(Observability(tracing=False, metrics=True)) as obs:
            engine = CrowdEngine(EngineConfig(seed=0))
            session = engine.session(PerfectCrowd({p: True for p in pairs}))
            session.ask_batch(pairs)
        assert obs.registry.counter("repro_engine_posted_total").value > 0


class TestShardTraces:
    def run_sharded(self, table, workers):
        from repro.shard import ShardedResolver

        config = PowerConfig(seed=0, shards=2)
        with activated(Observability(tracing=True, metrics=True)) as obs:
            result = ShardedResolver(config, workers=workers).resolve(
                table, worker_band="90"
            )
        return result, obs

    def test_inline_and_multiprocess_traces_have_one_structure(self, small_table):
        inline_result, inline_obs = self.run_sharded(small_table, workers=0)
        pooled_result, pooled_obs = self.run_sharded(small_table, workers=2)
        assert pooled_result.matches == inline_result.matches
        assert pooled_result.cost_cents == inline_result.cost_cents
        assert structure(pooled_obs.tracer.export()) == structure(
            inline_obs.tracer.export()
        )

    def test_worker_metrics_fold_into_the_coordinator(self, small_table):
        _, obs = self.run_sharded(small_table, workers=2)
        tasks = obs.registry.counter("repro_shard_tasks_total").value
        assert tasks > 0
        names = [name for _, name in structure(obs.tracer.export())]
        assert "shard.task" in names


class TestCliFlags:
    @pytest.fixture()
    def small_csv(self, tmp_path, small_table):
        from repro.data import save_csv

        path = tmp_path / "small.csv"
        save_csv(small_table, path)
        return path

    def test_resolve_writes_trace_and_metrics(self, small_csv, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "run.trace.jsonl"
        metrics_path = tmp_path / "run.prom"
        code = main([
            "resolve", str(small_csv), "--seed", "1",
            "--trace", str(trace_path), "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert str(trace_path) in out and str(metrics_path) in out

        from repro.obs import read_trace

        names = [name for _, name in structure(read_trace(trace_path))]
        assert names[0] == "resolve" and "selection.run" in names
        assert "repro_selection_questions_total" in metrics_path.read_text()

    def test_flags_leave_results_unchanged(self, small_csv, tmp_path, capsys):
        from repro.cli import main

        assert main(["resolve", str(small_csv), "--seed", "1"]) == 0
        plain = capsys.readouterr().out
        assert main([
            "resolve", str(small_csv), "--seed", "1",
            "--trace", str(tmp_path / "t.jsonl"),
        ]) == 0
        observed = capsys.readouterr().out
        strip = ("trace      :",)
        observed_lines = [
            line for line in observed.splitlines()
            if not line.startswith(strip)
        ]
        assert observed_lines == plain.splitlines()

    def test_simulate_prints_the_per_round_table(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "simulate", "--dataset", "restaurant", "--fault-profile", "none",
            "--seed", "0", "--out-dir", str(tmp_path),
            "--trace", str(tmp_path / "sim.trace.jsonl"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "round  asked  colored  cover(ms)  propagate(ms)" in out
        assert (tmp_path / "sim.trace.jsonl").exists()

        code = main([
            "simulate", "--dataset", "restaurant", "--fault-profile", "none",
            "--seed", "0", "--out-dir", str(tmp_path), "--no-rounds-table",
        ])
        assert code == 0
        assert "cover(ms)" not in capsys.readouterr().out
