"""Tests for partial-order graph analysis utilities."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import paper_pairs, paper_table, paper_vectors
from repro.data.ground_truth import pair_truth
from repro.exceptions import GraphError
from repro.graph import (
    GroupedGraph,
    PairGraph,
    count_order_violations,
    order_statistics,
    split_grouping,
    transitive_reduction,
)

from conftest import random_vectors


def make_graph(vectors):
    return PairGraph([(i, i + 1000) for i in range(vectors.shape[0])], vectors)


class TestOrderStatistics:
    def test_paper_example(self):
        graph = PairGraph(paper_pairs(), paper_vectors())
        stats = order_statistics(graph)
        assert stats.num_vertices == 18
        assert stats.num_edges == graph.num_edges
        # Width must match the minimum path cover (Dilworth).
        assert stats.width >= 1
        assert stats.depth >= 1
        assert 0.0 <= stats.comparability <= 1.0

    def test_chain(self):
        stats = order_statistics(make_graph(np.array([[0.9], [0.5], [0.1]])))
        assert stats.depth == 3
        assert stats.width == 1
        assert stats.comparability == 1.0

    def test_antichain(self):
        stats = order_statistics(make_graph(np.array([[1.0, 0.0], [0.0, 1.0]])))
        assert stats.depth == 1
        assert stats.width == 2
        assert stats.comparability == 0.0

    def test_skip_width(self):
        stats = order_statistics(
            make_graph(np.array([[0.9], [0.1]])), compute_width=False
        )
        assert stats.width == 0

    def test_str(self):
        text = str(order_statistics(make_graph(np.array([[0.5]]))))
        assert "|V|=1" in text


class TestTransitiveReduction:
    @settings(max_examples=25, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=1, max_value=20),
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=0, max_value=9999),
        ).map(lambda args: random_vectors(args[2], args[0], args[1]))
    )
    def test_closure_of_reduction_is_full_relation(self, vectors):
        graph = make_graph(vectors)
        reduced = transitive_reduction(graph)
        digraph = nx.DiGraph(reduced)
        digraph.add_nodes_from(range(len(graph)))
        closure = {
            (u, int(v)) for u in digraph.nodes for v in nx.descendants(digraph, u)
        }
        full = {
            (u, int(v)) for u in range(len(graph)) for v in graph.adjacency()[u]
        }
        assert closure == full

    def test_reduction_is_minimal_on_chain(self):
        graph = make_graph(np.array([[0.9], [0.5], [0.1]]))
        assert sorted(transitive_reduction(graph)) == [(0, 1), (1, 2)]

    def test_works_on_grouped_graph(self):
        base = PairGraph(paper_pairs(), paper_vectors())
        grouped = GroupedGraph(base, split_grouping(paper_vectors(), 0.1))
        reduced = transitive_reduction(grouped)
        assert len(reduced) <= grouped.num_edges


class TestOrderViolations:
    def test_paper_example_has_none(self):
        graph = PairGraph(paper_pairs(), paper_vectors())
        truth = pair_truth(paper_table(), paper_pairs())
        violations, comparable = count_order_violations(graph, truth)
        assert violations == 0
        assert comparable == graph.num_edges

    def test_constructed_violation(self):
        # v0 (non-match) dominates v1 (match): one violation.
        pairs = [(0, 1), (2, 3)]
        vectors = np.array([[0.9, 0.9], [0.5, 0.5]])
        graph = PairGraph(pairs, vectors)
        truth = {(0, 1): False, (2, 3): True}
        assert count_order_violations(graph, truth) == (1, 1)

    def test_requires_pair_graph(self):
        base = PairGraph(paper_pairs(), paper_vectors())
        grouped = GroupedGraph(base, split_grouping(paper_vectors(), 0.1))
        with pytest.raises(GraphError):
            count_order_violations(grouped, {})

    def test_small_table_rate_is_low(self, small_bundle):
        """The paper's claim 'few pairs invalidate the partial order' holds
        on our synthetic data too."""
        _, pairs, vectors, truth = small_bundle
        graph = PairGraph(pairs, vectors)
        violations, comparable = count_order_violations(graph, truth)
        assert comparable > 0
        assert violations / comparable < 0.02
