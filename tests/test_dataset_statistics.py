"""Statistical sanity of the synthetic datasets vs the paper's regime."""

import numpy as np
import pytest

from repro.data import cora, entity_clusters, restaurant, true_match_pairs
from repro.graph import PairGraph, count_order_violations
from repro.similarity import SimilarityConfig, similar_pairs, similarity_matrix


@pytest.fixture(scope="module")
def restaurant_bundle():
    table = restaurant()
    pairs = similar_pairs(table, 0.2)
    vectors = similarity_matrix(table, pairs, SimilarityConfig.uniform(4))
    return table, pairs, vectors


class TestRestaurantStatistics:
    def test_candidates_cover_gold(self, restaurant_bundle):
        """The pruning threshold must not drop true matches (the paper's
        premise that pruned pairs are safe non-matches)."""
        table, pairs, _ = restaurant_bundle
        gold = true_match_pairs(table)
        assert len(gold & set(pairs)) >= 0.98 * len(gold)

    def test_cluster_sizes_small(self, restaurant_bundle):
        table, _, _ = restaurant_bundle
        sizes = [len(members) for members in entity_clusters(table).values()]
        assert max(sizes) <= 5  # restaurants duplicate rarely

    def test_incomparability_in_paper_regime(self, restaurant_bundle):
        """Appendix E.1.1: 70-84 % of pairs are incomparable on the paper's
        datasets; our synthetic stand-ins must land in the same world."""
        _, pairs, vectors, = restaurant_bundle
        graph = PairGraph(pairs, vectors)
        assert 0.10 <= graph.comparability_fraction() <= 0.45

    def test_order_violation_rate_low(self, restaurant_bundle):
        """§5.1's premise: 'few pairs invalidate the partial order'."""
        from repro.data.ground_truth import pair_truth

        table, pairs, vectors = restaurant_bundle
        graph = PairGraph(pairs, vectors)
        truth = pair_truth(table, pairs)
        violations, comparable = count_order_violations(graph, truth)
        assert violations / max(comparable, 1) < 0.01

    def test_matches_are_more_similar(self, restaurant_bundle):
        from repro.data.ground_truth import pair_truth

        table, pairs, vectors = restaurant_bundle
        truth = pair_truth(table, pairs)
        labels = np.array([truth[pair] for pair in pairs])
        means = vectors.mean(axis=1)
        assert means[labels].mean() > means[~labels].mean() + 0.2


class TestCoraStatistics:
    @pytest.fixture(scope="class")
    def table(self):
        return cora()

    def test_long_tailed_clusters(self, table):
        sizes = sorted(
            (len(members) for members in entity_clusters(table).values()),
            reverse=True,
        )
        assert sizes[0] >= 10  # the dirty-bibliography long tail
        assert np.median(sizes) <= 6

    def test_candidates_cover_gold(self, table):
        pairs = set(similar_pairs(table, 0.2))
        gold = true_match_pairs(table)
        assert len(gold & pairs) >= 0.98 * len(gold)

    def test_harder_than_restaurant(self, table):
        """Cora's match/non-match similarity gap is narrower — the property
        that makes it the 'hard' dataset in the paper's figures."""
        from repro.data.ground_truth import pair_truth

        pairs = similar_pairs(table, 0.2)
        vectors = similarity_matrix(table, pairs, SimilarityConfig.uniform(8))
        truth = pair_truth(table, pairs)
        labels = np.array([truth[pair] for pair in pairs])
        means = vectors.mean(axis=1)
        cora_gap = means[labels].mean() - means[~labels].mean()

        rest = restaurant()
        rest_pairs = similar_pairs(rest, 0.2)
        rest_vectors = similarity_matrix(rest, rest_pairs, SimilarityConfig.uniform(4))
        rest_truth = pair_truth(rest, rest_pairs)
        rest_labels = np.array([rest_truth[pair] for pair in rest_pairs])
        rest_gap = (
            rest_vectors.mean(axis=1)[rest_labels].mean()
            - rest_vectors.mean(axis=1)[~rest_labels].mean()
        )
        assert cora_gap < rest_gap
