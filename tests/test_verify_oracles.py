"""Differential oracles: production paths vs their brute-force twins."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd import SimulatedCrowd, WorkerPool
from repro.exceptions import VerificationError
from repro.graph import PairGraph
from repro.selection import SELECTORS
from repro.verify import (
    NaivePairGraph,
    check_batch_similarity,
    check_crowd_aggregation,
    check_dominance_construction,
    check_join_methods,
    check_selector_differential,
    check_selector_monotone_oracle,
    check_transitive_closure,
    monotone_truth,
    naive_dominance_edges,
    naive_transitive_closure,
    random_instance,
)

SEEDS = range(10)
ALL_SELECTORS = tuple(sorted(SELECTORS)) + ("greedy-reference",)


class TestDominanceOracles:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_construction_algorithms_agree_with_naive(self, seed):
        _, vectors = random_instance(seed)
        check_dominance_construction(vectors)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dominance_is_transitively_closed(self, seed):
        _, vectors = random_instance(seed)
        check_transitive_closure(vectors)

    def test_naive_edges_on_known_chain(self):
        vectors = np.array([[0.9, 0.9], [0.5, 0.5], [0.1, 0.1]])
        assert naive_dominance_edges(vectors) == {(0, 1), (0, 2), (1, 2)}

    def test_naive_edges_incomparable(self):
        vectors = np.array([[0.9, 0.1], [0.1, 0.9]])
        assert naive_dominance_edges(vectors) == set()

    def test_naive_closure(self):
        closure = naive_transitive_closure({(0, 1), (1, 2)}, 3)
        assert closure == {(0, 1), (1, 2), (0, 2)}

    def test_oracle_catches_missing_edge(self, monkeypatch):
        from repro.graph import construction

        original = construction.blocked_dominance_lists

        def mutated(dominant, dominated, *args, **kwargs):
            lists = original(dominant, dominated, *args, **kwargs)
            for index, children in enumerate(lists):
                if len(children):
                    lists[index] = children[:-1]
                    break
            return lists

        monkeypatch.setattr(construction, "blocked_dominance_lists", mutated)
        _, vectors = random_instance(0)
        with pytest.raises(VerificationError, match="missing"):
            check_dominance_construction(vectors)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 12),
        st.integers(1, 4),
        st.integers(0, 10_000),
    )
    def test_construction_hypothesis(self, n, m, seed):
        rng = np.random.default_rng(seed)
        vectors = (rng.integers(0, 4, size=(n, m)) / 3.0).astype(np.float64)
        check_dominance_construction(vectors)
        check_transitive_closure(vectors)


class TestSelectorDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", ALL_SELECTORS)
    def test_production_equals_naive(self, name, seed):
        pairs, vectors = random_instance(seed)
        check_selector_differential(name, pairs, vectors, seed=seed)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", ALL_SELECTORS)
    def test_monotone_truth_recovered_exactly(self, name, seed):
        pairs, vectors = random_instance(seed)
        check_selector_monotone_oracle(name, pairs, vectors, seed=seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_grouped_differential(self, seed):
        pairs, vectors = random_instance(seed)
        check_selector_differential("power", pairs, vectors, seed=seed, epsilon=0.15)

    @pytest.mark.parametrize("seed", range(4))
    def test_noisy_differential(self, seed):
        pairs, vectors = random_instance(seed)
        check_selector_differential("power", pairs, vectors, seed=seed, band="90")

    def test_naive_graph_matches_production_masks(self):
        pairs, vectors = random_instance(3)
        fast, slow = PairGraph(pairs, vectors), NaivePairGraph(pairs, vectors)
        for vertex in range(len(fast)):
            assert np.array_equal(
                fast.descendant_mask(vertex), slow.descendant_mask(vertex)
            )
            assert np.array_equal(
                fast.ancestor_mask(vertex), slow.ancestor_mask(vertex)
            )

    def test_monotone_truth_respects_order(self):
        _, vectors = random_instance(1)
        truth = monotone_truth(vectors)
        for u, v in naive_dominance_edges(vectors):
            assert truth[u] >= truth[v]  # a dominated match forces the dominator

    def test_oracle_catches_inverted_propagation(self, monkeypatch):
        from repro.graph.coloring import Color, ColoringState

        def mutated(self, vertex, answer, propagate=True):
            self.graph._check_vertex(vertex)
            self.asked_order.append(vertex)
            self.colors[vertex] = Color.GREEN if answer else Color.RED
            self._pinned[vertex] = True
            if not propagate:
                return
            if answer:
                targets = self.graph.descendant_mask(vertex)
            else:
                targets = self.graph.ancestor_mask(vertex)
                self._red_votes[targets] += 1
                self._refresh(targets)
                return
            self._green_votes[targets] += 1
            self._refresh(targets)

        monkeypatch.setattr(ColoringState, "apply_answer", mutated)
        pairs, vectors = random_instance(0)
        with pytest.raises(VerificationError):
            check_selector_differential("power", pairs, vectors, seed=0)


class TestSimilarityOracles:
    def test_batch_similarity_bit_identical(self, small_bundle):
        from repro.similarity import SimilarityConfig

        table, pairs, _, _ = small_bundle
        config = SimilarityConfig.uniform(table.num_attributes)
        check_batch_similarity(table, pairs, config)

    def test_join_methods_agree(self, small_table):
        check_join_methods(small_table, 0.25)


class TestCrowdAggregationOracle:
    @pytest.mark.parametrize("mode", ["weighted", "majority"])
    def test_platform_matches_naive_recompute(self, mode):
        pairs, _ = random_instance(0)
        truth = {pair: bool(index % 2) for index, pair in enumerate(pairs)}
        crowd = SimulatedCrowd(
            truth,
            pool=WorkerPool(accuracy_range="80", seed=11),
            assignments=5,
            aggregation=mode,
        )
        check_crowd_aggregation(crowd, pairs)

    def test_oracle_catches_weight_blind_votes(self, monkeypatch):
        from repro.crowd import platform
        from repro.crowd.aggregate import majority_vote

        monkeypatch.setattr(
            platform, "weighted_majority_vote", lambda votes, weights: majority_vote(votes)
        )
        pairs, _ = random_instance(0)
        truth = {pair: bool(index % 2) for index, pair in enumerate(pairs)}
        crowd = SimulatedCrowd(
            truth,
            pool=WorkerPool(accuracy_range="80", seed=11),
            assignments=5,
            aggregation="weighted",
        )
        with pytest.raises(VerificationError):
            check_crowd_aggregation(crowd, pairs)
