"""Unit tests for the snapshot store, the index codec, and the service.

The integration-level guarantees live in the stream-equivalence oracle and
the property suite; this file pins the local contracts each piece is built
from — content addressing detecting corruption, the manifest's
header/version discipline, the TokenIndex codec's bit-identity, and the
service's refusal modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd import PerfectCrowd
from repro.core.config import PowerConfig
from repro.exceptions import ConfigurationError, DataError
from repro.similarity.batch import TokenIndex
from repro.similarity.tokenize import qgram_tokens, word_tokens
from repro.stream import (
    SNAPSHOT_VERSION,
    SnapshotStore,
    StreamingResolver,
    decode_index,
    encode_index,
    load_snapshot,
)
from repro.stream.snapshot import canonical_json


@pytest.fixture()
def store(tmp_path):
    return SnapshotStore(tmp_path / "snap")


class TestObjectStore:
    def test_bytes_roundtrip_and_idempotence(self, store):
        digest = store.put_bytes(b"payload")
        assert store.put_bytes(b"payload") == digest
        assert store.get_bytes(digest) == b"payload"
        assert len(list(store.objects_dir.rglob("*.blob"))) == 1

    def test_missing_object_raises(self, store):
        store.put_bytes(b"x")  # creates the directory structure
        with pytest.raises(DataError, match="missing"):
            store.get_bytes("0" * 64)

    def test_corrupt_object_raises(self, store):
        digest = store.put_bytes(b"honest bytes")
        path = store._object_path(digest)
        path.write_bytes(b"tampered")
        with pytest.raises(DataError, match="corrupt"):
            store.get_bytes(digest)

    def test_json_roundtrip_is_canonical(self, store):
        payload = {"b": [1, 2], "a": {"nested": True}}
        digest = store.put_json(payload)
        assert store.get_json(digest) == payload
        # Key order must not change the address.
        assert store.put_json({"a": {"nested": True}, "b": [1, 2]}) == digest

    def test_array_roundtrip_preserves_dtype(self, store):
        for array in (
            np.arange(7, dtype=np.uint64),
            np.zeros((3, 2), dtype=np.int64),
            np.array([], dtype=np.uint64),
        ):
            restored = store.get_array(store.put_array(array))
            assert restored.dtype == array.dtype
            assert restored.shape == array.shape
            assert (restored == array).all()


class TestManifest:
    def test_header_then_checkpoints(self, store):
        store.append_header({"name": "t"})
        store.append_checkpoint({"batch": 1})
        store.append_checkpoint({"batch": 2})
        header, checkpoints, truncated = store.read_manifest()
        assert header["name"] == "t"
        assert header["version"] == SNAPSHOT_VERSION
        assert [c["batch"] for c in checkpoints] == [1, 2]
        assert not truncated

    def test_torn_tail_is_repaired(self, store):
        store.append_header({"name": "t"})
        store.append_checkpoint({"batch": 1})
        store.close()
        with open(store.manifest_path, "ab") as handle:
            handle.write(b'{"type": "checkpoint", "ba')
        header, checkpoints, truncated = store.read_manifest(repair=True)
        assert truncated
        assert header is not None
        assert [c["batch"] for c in checkpoints] == [1]

    def test_missing_header_rejected(self, store):
        store.append_checkpoint({"batch": 1})
        with pytest.raises(DataError, match="header"):
            store.read_manifest()

    def test_load_snapshot_requires_manifest_and_checkpoint(self, store):
        with pytest.raises(DataError, match="nothing to restore"):
            load_snapshot(store)
        store.append_header({"name": "t"})
        with pytest.raises(DataError, match="no completed checkpoint"):
            load_snapshot(store)
        store.append_checkpoint({"batch": 1})
        header, checkpoint = load_snapshot(store)
        assert header["name"] == "t"
        assert checkpoint["batch"] == 1

    def test_canonical_json_is_bytewise_stable(self):
        assert canonical_json({"b": 1, "a": [True, None]}) == (
            b'{"a":[true,null],"b":1}'
        )


class TestIndexCodec:
    TEXTS = ["alpha beta", "beta gamma", "alpha beta", "", "delta"]

    @pytest.mark.parametrize(
        ("name", "tokenizer"), [("word", word_tokens), ("qgram", qgram_tokens)]
    )
    def test_roundtrip_is_bit_identical(self, store, name, tokenizer):
        index = TokenIndex(self.TEXTS, tokenizer)
        restored = decode_index(store, encode_index(store, index, name))
        assert (restored.bits == index.bits).all()
        assert (restored.sizes == index.sizes).all()
        assert (restored.row_of_text == index.row_of_text).all()
        assert restored.vocab_size == index.vocab_size
        assert restored._seen == index._seen
        assert restored._vocab == index._vocab

    def test_restored_index_extends_identically(self, store):
        more = ["beta epsilon", "zeta"]
        index = TokenIndex(self.TEXTS, word_tokens)
        restored = decode_index(store, encode_index(store, index, "word"))
        index.extend(more)
        restored.extend(more)
        assert (restored.bits == index.bits).all()
        assert (restored.sizes == index.sizes).all()
        assert restored._vocab == index._vocab

    def test_bigram_fast_path_is_not_checkpointable(self, store):
        index = TokenIndex.for_bigrams(["ab", "cd"])
        with pytest.raises(DataError, match="for_bigrams"):
            encode_index(store, index, "qgram")

    def test_unknown_tokenizer_rejected(self, store):
        index = TokenIndex(self.TEXTS, word_tokens)
        with pytest.raises(DataError, match="tokenizer"):
            encode_index(store, index, "soundex")
        spec = encode_index(store, index, "word")
        with pytest.raises(DataError, match="tokenizer"):
            decode_index(store, {**spec, "tokenizer": "soundex"})

    def test_inconsistent_snapshot_rejected(self, store):
        index = TokenIndex(self.TEXTS, word_tokens)
        spec = encode_index(store, index, "word")
        truncated = store.put_array(index.bits[:1])
        with pytest.raises(DataError, match="inconsistent"):
            decode_index(store, {**spec, "bits": truncated})


class TestServiceGuards:
    ATTRIBUTES = ("name", "city")
    ROWS = [("alpha diner", "rome"), ("alpha diner", "rome"), ("beta bar", "oslo")]
    ENTITIES = [1, 1, 2]

    def test_checkpoint_requires_directory(self):
        service = StreamingResolver(self.ATTRIBUTES)
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            service.checkpoint()

    def test_invalid_shard_threshold_rejected(self):
        with pytest.raises(ConfigurationError, match="shard_threshold"):
            StreamingResolver(self.ATTRIBUTES, shard_threshold=0)

    def test_fresh_service_refuses_existing_manifest(self, tmp_path):
        directory = tmp_path / "ck"
        service = StreamingResolver(self.ATTRIBUTES, checkpoint_dir=directory)
        service.add_batch(self.ROWS, entity_ids=self.ENTITIES)
        service.checkpoint()
        with pytest.raises(DataError, match="resume"):
            StreamingResolver(self.ATTRIBUTES, checkpoint_dir=directory)
        restored = StreamingResolver.restore(directory)
        assert restored.batches == 1
        assert restored.labels == service.labels

    def test_shard_routing_is_bit_identical(self, small_table):
        rows = [record.values for record in small_table]
        entities = [record.entity_id for record in small_table]
        plain = StreamingResolver(small_table.attributes, name="plain")
        routed = StreamingResolver(
            small_table.attributes, name="routed", shard_threshold=1
        )
        for start in (0, 30):
            chunk = slice(start, start + 30)
            plain.add_batch(rows[chunk], entity_ids=entities[chunk])
            routed.add_batch(rows[chunk], entity_ids=entities[chunk])
        assert routed.labels == plain.labels
        assert routed.transcripts == plain.transcripts
        assert routed.clusters() == plain.clusters()
        assert routed.cost_cents == plain.cost_cents

    def test_shared_crowd_sessions_pool_billing(self):
        truth = {(0, 1): True, (0, 2): False, (1, 2): False}
        crowd = PerfectCrowd(truth, assignments=3)
        service = StreamingResolver(
            self.ATTRIBUTES,
            config=PowerConfig(seed=0, epsilon=None),
            crowd=crowd,
            pairs_per_hit=2,
            cents_per_hit=10,
        )
        service.add_batch(self.ROWS[:2], entity_ids=self.ENTITIES[:2])
        service.add_batch(self.ROWS[2:], entity_ids=self.ENTITIES[2:])
        assert service.assignments == 3
        asked = len(service.transcripts)
        assert service.hits == -(-asked // 2) * 3
        assert service.cost_cents == service.hits * 10
        assert "pooled cost" in service.summary()

    def test_rng_tokens_are_deterministic_and_checkpointed(self, tmp_path):
        def run(directory):
            service = StreamingResolver(
                self.ATTRIBUTES, checkpoint_dir=directory
            )
            service.add_batch(self.ROWS, entity_ids=self.ENTITIES)
            service.checkpoint()
            return service

        first = run(tmp_path / "a")
        second = run(tmp_path / "b")
        assert [r["batch_token"] for r in first.reports] == [
            r["batch_token"] for r in second.reports
        ]
        resumed = StreamingResolver.restore(tmp_path / "a")
        resumed.add_batch([("gamma pub", "kiev")], entity_ids=[3])
        first.add_batch([("gamma pub", "kiev")], entity_ids=[3])
        assert (
            resumed.reports[-1]["batch_token"]
            == first.reports[-1]["batch_token"]
        )
