"""Tests for the m-dimensional range tree and full-dimensional index build."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import RangeTreeND, brute_force_edges, index_edges_nd

from conftest import random_vectors


def points_strategy(max_n=40, dims=(2, 3, 4)):
    return st.tuples(
        st.integers(min_value=0, max_value=max_n),
        st.sampled_from(dims),
        st.integers(min_value=0, max_value=9999),
    ).map(lambda args: random_vectors(args[2], args[0], args[1]))


class TestRangeTreeND:
    @settings(max_examples=40, deadline=None)
    @given(points_strategy(), st.integers(min_value=0, max_value=9999))
    def test_matches_linear_scan(self, points, query_seed):
        if points.shape[0] == 0:
            return
        tree = RangeTreeND(points)
        rng = np.random.default_rng(query_seed)
        bounds = np.round(rng.random(points.shape[1]) * 4) / 4
        expected = sorted(int(i) for i in np.flatnonzero((points <= bounds).all(axis=1)))
        assert sorted(tree.query_leq(bounds)) == expected

    def test_query_on_existing_point(self):
        points = np.array([[0.5, 0.5, 0.5], [0.4, 0.6, 0.5], [0.1, 0.1, 0.1]])
        tree = RangeTreeND(points)
        assert sorted(tree.query_leq([0.5, 0.5, 0.5])) == [0, 2]

    def test_duplicates(self):
        points = np.tile([0.3, 0.7, 0.2], (5, 1))
        tree = RangeTreeND(points)
        assert sorted(tree.query_leq([0.3, 0.7, 0.2])) == [0, 1, 2, 3, 4]
        assert tree.query_leq([0.3, 0.69, 0.2]) == []

    def test_dimension_mismatch(self):
        tree = RangeTreeND(np.zeros((3, 3)))
        with pytest.raises(GraphError):
            tree.query_leq([0.5, 0.5])

    def test_shape_validation(self):
        with pytest.raises(GraphError):
            RangeTreeND(np.zeros((3,)))
        with pytest.raises(GraphError):
            RangeTreeND(np.zeros((3, 1)))

    def test_len_and_dims(self):
        tree = RangeTreeND(np.zeros((7, 4)))
        assert len(tree) == 7
        assert tree.num_dimensions == 4


class TestIndexEdgesND:
    @settings(max_examples=30, deadline=None)
    @given(points_strategy(max_n=35))
    def test_equals_brute_force(self, vectors):
        assert index_edges_nd(vectors) == brute_force_edges(vectors)

    def test_one_dimensional_fallback(self):
        vectors = np.array([[0.5], [0.2], [0.5], [0.9]])
        assert index_edges_nd(vectors) == brute_force_edges(vectors)

    def test_on_real_vectors(self, small_bundle):
        _, _, vectors, _ = small_bundle
        assert index_edges_nd(vectors) == brute_force_edges(vectors)
