"""Tests for pair-to-cluster conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import clusters_from_matches, clusters_to_matches
from repro.exceptions import DataError


class TestClustersFromMatches:
    def test_connected_components(self):
        clusters = clusters_from_matches(5, [(0, 1), (1, 2)])
        assert clusters == [[0, 1, 2], [3], [4]]

    def test_no_matches_all_singletons(self):
        assert clusters_from_matches(3, []) == [[0], [1], [2]]

    def test_out_of_range_match(self):
        with pytest.raises(DataError):
            clusters_from_matches(2, [(0, 5)])

    def test_negative_num_records(self):
        with pytest.raises(DataError):
            clusters_from_matches(-1, [])


class TestClustersToMatches:
    def test_round_trip_closure(self):
        matches = {(0, 1), (1, 2)}
        clusters = clusters_from_matches(4, matches)
        closure = clusters_to_matches(clusters)
        assert closure == {(0, 1), (0, 2), (1, 2)}

    def test_singletons_produce_nothing(self):
        assert clusters_to_matches([[0], [1]]) == set()

    @settings(max_examples=30)
    @given(
        st.sets(
            st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
                lambda p: p[0] != p[1]
            ),
            max_size=12,
        )
    )
    def test_closure_contains_original(self, matches):
        clusters = clusters_from_matches(10, matches)
        closure = clusters_to_matches(clusters)
        canonical = {tuple(sorted(pair)) for pair in matches}
        assert canonical <= closure
        # Idempotence: clustering the closure changes nothing.
        assert clusters_from_matches(10, closure) == clusters
