"""Tests for similarity-vector computation and SimilarityConfig."""

import numpy as np
import pytest

from repro.data import Table
from repro.exceptions import ConfigurationError
from repro.similarity import (
    SimilarityConfig,
    attribute_similarities,
    resolve_function,
    similarity_matrix,
)


@pytest.fixture()
def two_column_table():
    return Table.from_rows(
        "t",
        ("a", "b"),
        [("abc", "x y"), ("abd", "x z"), ("zzz", "q")],
    )


class TestSimilarityConfig:
    def test_uniform(self):
        config = SimilarityConfig.uniform(3)
        assert config.functions == ("bigram",) * 3
        assert config.num_attributes == 3

    def test_unknown_function_rejected(self):
        with pytest.raises(ConfigurationError):
            SimilarityConfig(functions=("nope",))

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            SimilarityConfig(functions=("edit",), attribute_threshold=1.5)

    def test_empty_functions_rejected(self):
        with pytest.raises(ConfigurationError):
            SimilarityConfig(functions=())

    def test_for_table_arity_mismatch(self, two_column_table):
        with pytest.raises(ConfigurationError):
            SimilarityConfig.uniform(3).for_table(two_column_table)

    def test_resolve_function_known(self):
        assert resolve_function("edit")("ab", "ab") == 1.0

    def test_resolve_function_unknown(self):
        with pytest.raises(ConfigurationError):
            resolve_function("cosine")


class TestAttributeSimilarities:
    def test_vector_values(self, two_column_table):
        config = SimilarityConfig(functions=("edit", "jaccard"), attribute_threshold=0.0)
        vector = attribute_similarities(two_column_table, (0, 1), config)
        assert vector[0] == pytest.approx(2 / 3)  # abc vs abd
        assert vector[1] == pytest.approx(1 / 3)  # {x,y} vs {x,z}

    def test_threshold_clamps_to_zero(self, two_column_table):
        config = SimilarityConfig(functions=("edit", "jaccard"), attribute_threshold=0.5)
        vector = attribute_similarities(two_column_table, (0, 1), config)
        assert vector[0] == pytest.approx(2 / 3)  # above tau: kept
        assert vector[1] == 0.0  # 1/3 < 0.5: clamped

    def test_pair_order_irrelevant(self, two_column_table):
        config = SimilarityConfig.uniform(2)
        assert attribute_similarities(
            two_column_table, (0, 2), config
        ) == attribute_similarities(two_column_table, (2, 0), config)


class TestSimilarityMatrix:
    def test_shape_and_alignment(self, two_column_table):
        config = SimilarityConfig.uniform(2, attribute_threshold=0.0)
        pairs = [(0, 1), (0, 2), (1, 2)]
        matrix = similarity_matrix(two_column_table, pairs, config)
        assert matrix.shape == (3, 2)
        for row, pair in enumerate(pairs):
            expected = attribute_similarities(two_column_table, pair, config)
            assert np.allclose(matrix[row], expected)

    def test_values_in_unit_interval(self, small_bundle):
        _, _, vectors, _ = small_bundle
        assert vectors.min() >= 0.0
        assert vectors.max() <= 1.0

    def test_empty_pairs(self, two_column_table):
        config = SimilarityConfig.uniform(2)
        matrix = similarity_matrix(two_column_table, [], config)
        assert matrix.shape == (0, 2)
