"""Smoke tests: the runnable examples actually run.

Only the fast examples execute here (the full sweeps live in benchmarks);
each is loaded by path and its ``main()`` invoked, with output checked for
its headline content.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "crowd questions asked" in out
        assert "quality" in out

    def test_paper_walkthrough(self, capsys):
        run_example("paper_walkthrough.py")
        out = capsys.readouterr().out
        assert "questions : 4" in out  # the paper's Fig. 7 walkthrough
        assert "iterations: 3" in out
        assert "0.32 0.28 0.21 0.19" in out.replace("[", "").replace("]", "")

    def test_custom_dataset(self, capsys):
        run_example("custom_dataset.py")
        out = capsys.readouterr().out
        assert "same product" in out
        assert "F1=1.000" in out

    def test_streaming_dedup(self, capsys):
        run_example("streaming_dedup.py")
        out = capsys.readouterr().out
        assert "final state" in out
        assert "one-shot resolution" in out

    def test_all_examples_have_mains(self):
        for path in EXAMPLES_DIR.glob("*.py"):
            source = path.read_text()
            assert "def main()" in source, path.name
            assert '__name__ == "__main__"' in source, path.name

    def test_readme_lists_every_example(self):
        readme = (EXAMPLES_DIR.parent / "README.md").read_text()
        for path in EXAMPLES_DIR.glob("*.py"):
            assert path.name in readme, f"{path.name} missing from README"
