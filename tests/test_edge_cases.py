"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro.crowd import CrowdSession, PerfectCrowd
from repro.exceptions import CrowdError
from repro.graph import Color, ColoringState, PairGraph, split_grouping
from repro.selection import ErrorPolicy, TopoSortSelector, resolve_undecided_vertices


class TestDegenerateGraphs:
    def test_empty_graph_run_is_noop(self):
        graph = PairGraph([], np.empty((0, 2)))
        result = TopoSortSelector().run(graph, PerfectCrowd({}).session())
        assert result.labels == {}
        assert result.questions == 0
        assert result.iterations == 0

    def test_single_vertex_graph(self):
        graph = PairGraph([(0, 1)], np.array([[0.5, 0.5]]))
        result = TopoSortSelector().run(
            graph, PerfectCrowd({(0, 1): True}).session()
        )
        assert result.labels == {(0, 1): True}
        assert result.questions == 1

    def test_all_equal_vectors(self):
        """Equal vectors are mutually incomparable: every vertex is asked."""
        pairs = [(i, i + 100) for i in range(6)]
        graph = PairGraph(pairs, np.tile([0.5, 0.5], (6, 1)))
        truth = {pair: bool(i % 2) for i, pair in enumerate(pairs)}
        result = TopoSortSelector().run(graph, PerfectCrowd(truth).session())
        assert result.questions == 6
        assert result.labels == truth

    def test_empty_coloring_state_complete(self):
        graph = PairGraph([], np.empty((0, 1)))
        assert ColoringState(graph).is_complete()

    def test_grouping_single_vertex(self):
        assert split_grouping(np.array([[0.3, 0.7]]), 0.1) == [[0]]


class TestCrowdFailures:
    def test_asking_unknown_pair_propagates(self):
        graph = PairGraph([(0, 1)], np.array([[0.5]]))
        crowd = PerfectCrowd({(8, 9): True})  # wrong universe
        with pytest.raises(CrowdError):
            TopoSortSelector().run(graph, crowd.session())

    def test_free_crowd_costs_nothing(self):
        crowd = PerfectCrowd({(0, 1): True})
        session = crowd.session(cents_per_hit=0)
        session.ask((0, 1))
        assert session.cost_cents == 0
        assert session.hits > 0

    def test_session_reuse_across_selectors_is_cumulative(self):
        truth = {(0, 1): True, (2, 3): False}
        graph_a = PairGraph([(0, 1)], np.array([[0.9]]))
        graph_b = PairGraph([(2, 3)], np.array([[0.1]]))
        session = PerfectCrowd(truth).session()
        TopoSortSelector().run(graph_a, session)
        TopoSortSelector().run(graph_b, session)
        assert session.questions_asked == 2
        assert session.iterations == 2


class TestHistogramFallbacks:
    def test_all_blue_no_training_uses_similarity(self):
        vectors = np.array([[0.9, 0.9], [0.1, 0.1]])
        pairs = [(0, 1), (2, 3)]
        graph = PairGraph(pairs, vectors)
        state = ColoringState(graph)
        state.mark_blue(0)
        state.mark_blue(1)
        decided = resolve_undecided_vertices(
            graph, state, state.blue_vertices(), ErrorPolicy()
        )
        assert decided[(0, 1)] is True  # weighted similarity 0.9 > 0.5
        assert decided[(2, 3)] is False

    def test_red_only_training_still_sensible(self):
        """With only RED evidence, high-similarity unknowns fall back to the
        nearest bin; low ones stay RED."""
        vectors = np.array([[0.2, 0.2], [0.25, 0.25], [0.3, 0.3], [0.95, 0.95]])
        pairs = [(i, i + 10) for i in range(4)]
        graph = PairGraph(pairs, vectors)
        state = ColoringState(graph)
        for vertex in (0, 1, 2):
            state.force_color(vertex, Color.RED)
        state.colors[3] = Color.BLUE
        decided = resolve_undecided_vertices(
            graph, state, np.array([3]), ErrorPolicy(num_bins=4)
        )
        # No GREEN training evidence exists -> similarity fallback applies.
        assert decided[pairs[3]] is True


class TestBudgetEdges:
    def test_budget_one(self, small_bundle):
        _, pairs, vectors, truth = small_bundle
        graph = PairGraph(pairs, vectors)
        result = TopoSortSelector().run(
            graph, PerfectCrowd(truth).session(), budget=1
        )
        assert result.questions == 1
        assert set(result.labels) == set(truth)

    def test_budget_larger_than_needed(self, small_bundle):
        _, pairs, vectors, truth = small_bundle
        graph = PairGraph(pairs, vectors)
        unlimited = TopoSortSelector().run(graph, PerfectCrowd(truth).session())
        capped = TopoSortSelector().run(
            graph, PerfectCrowd(truth).session(), budget=10 ** 6
        )
        assert capped.questions == unlimited.questions
