"""Calibration-profile codec: golden schema and rejection paths.

The profile JSON is a versioned on-disk contract (other tools and future
schema migrations depend on it), so the golden test pins the exact
top-level shape, and the rejection tests prove unknown versions and
corrupt files fail loudly with :class:`~repro.exceptions.DataError`
instead of silently planning from garbage coefficients.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.plan.calibrate import (
    PROFILE_VERSION,
    CalibrationProfile,
    default_profile,
    default_profile_path,
    load_profile,
    resolve_profile,
)
from repro.plan.model import STAGES


class TestGoldenSchema:
    def test_payload_shape(self):
        payload = default_profile().to_payload()
        assert sorted(payload) == [
            "calibrated",
            "coefficients",
            "host",
            "meta",
            "version",
        ]
        assert payload["version"] == PROFILE_VERSION == 1
        assert payload["calibrated"] is False
        assert sorted(payload["coefficients"]) == sorted(STAGES)
        for coeffs in payload["coefficients"].values():
            assert sorted(coeffs) == ["c0", "c1"]
            assert coeffs["c0"] >= 0.0
            assert coeffs["c1"] >= 0.0

    def test_roundtrip_through_disk(self, tmp_path):
        path = tmp_path / "profile.json"
        profile = default_profile()
        profile.save(path)
        loaded = load_profile(path)
        assert loaded.to_payload() == profile.to_payload()

    def test_saved_json_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        default_profile().save(a)
        default_profile().save(b)
        assert a.read_text() == b.read_text()


class TestRejection:
    def test_unknown_version_rejected(self, tmp_path):
        payload = default_profile().to_payload()
        payload["version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(DataError, match="version"):
            load_profile(path)

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text('{"version": 1, "coefficients": {')
        with pytest.raises(DataError):
            load_profile(path)

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(DataError):
            load_profile(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DataError):
            load_profile(tmp_path / "nowhere.json")

    def test_missing_stage_rejected(self):
        payload = default_profile().to_payload()
        del payload["coefficients"]["join_naive"]
        with pytest.raises(DataError, match="join_naive"):
            CalibrationProfile.from_payload(payload)

    def test_unknown_stage_rejected(self):
        payload = default_profile().to_payload()
        payload["coefficients"]["warp_drive"] = {"c0": 0.0, "c1": 0.0}
        with pytest.raises(DataError):
            CalibrationProfile.from_payload(payload)


class TestResolveProfile:
    def test_off_is_not_a_profile(self):
        with pytest.raises(ConfigurationError):
            resolve_profile("off")

    def test_auto_without_file_falls_back_to_defaults(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_PLAN_PROFILE", str(tmp_path / "missing.json")
        )
        profile = resolve_profile("auto")
        assert profile.calibrated is False

    def test_auto_with_file_loads_it(self, tmp_path, monkeypatch):
        path = tmp_path / "profile.json"
        default_profile().save(path)
        monkeypatch.setenv("REPRO_PLAN_PROFILE", str(path))
        assert default_profile_path() == path
        profile = resolve_profile("auto")
        assert profile.to_payload() == default_profile().to_payload()

    def test_explicit_path_must_exist(self, tmp_path):
        with pytest.raises(DataError):
            resolve_profile(str(tmp_path / "missing.json"))
