"""Golden transcripts for the ``repro plan`` CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.plan.calibrate import load_profile
from repro.plan.model import STAGES


@pytest.fixture(autouse=True)
def isolated_profile_env(tmp_path, monkeypatch):
    """Keep the CLI away from any real ~/.cache profile."""
    monkeypatch.setenv("REPRO_PLAN_PROFILE", str(tmp_path / "env-profile.json"))
    from repro.plan import hooks

    hooks.clear_cache()
    yield
    hooks.clear_cache()


class TestCalibrate:
    def test_writes_a_loadable_versioned_profile(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        code = main(["plan", "--calibrate", "--fast", "--profile", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "calibrated 10 stages (fast workloads)" in out
        assert f"profile -> {path}" in out
        profile = load_profile(path)
        assert profile.calibrated is True
        assert sorted(profile.coefficients) == sorted(STAGES)
        assert json.loads(path.read_text())["version"] == 1

    def test_calibrate_then_explain_in_one_invocation(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        code = main([
            "plan", "--calibrate", "--fast", "--explain",
            "--dataset", "restaurant", "--scale", "0.05",
            "--profile", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[profile: calibrated]" in out


class TestExplain:
    def test_plan_tree_golden_shape(self, capsys):
        code = main([
            "plan", "--explain", "--dataset", "restaurant", "--scale", "0.05",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # No profile on disk: the tree must say it planned from defaults.
        assert "[profile: defaults]" in out
        assert "plan for 43 rows x 4 attrs" in out
        for knob in (
            "join_method",
            "use_batch_similarity",
            "use_incremental_selection",
            "reachability_index",
            "shards",
            "stream_batch_size",
        ):
            assert knob in out, f"plan tree is missing knob {knob}"
        assert "rejected:" in out
        assert "why:" in out
        assert "predicted planner-visible total:" in out

    def test_explain_with_explicit_profile(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        assert main(["plan", "--calibrate", "--fast", "--profile", str(path)]) == 0
        capsys.readouterr()
        code = main([
            "plan", "--explain", "--dataset", "restaurant", "--scale", "0.05",
            "--profile", str(path),
        ])
        assert code == 0
        assert "[profile: calibrated]" in capsys.readouterr().out

    def test_missing_explicit_profile_fails_cleanly(self, tmp_path, capsys):
        code = main([
            "plan", "--explain", "--profile", str(tmp_path / "nope.json"),
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestUsage:
    def test_no_action_is_an_error(self, capsys):
        assert main(["plan"]) == 2
        assert "--calibrate" in capsys.readouterr().err
