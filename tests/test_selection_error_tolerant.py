"""Tests for the Power+ error-tolerance layer (§6, Algorithm 5)."""

import numpy as np
import pytest

from repro.crowd import PerfectCrowd, SimulatedCrowd, WorkerPool
from repro.exceptions import ConfigurationError
from repro.graph import Color, ColoringState, GroupedGraph, PairGraph, split_grouping
from repro.selection import ErrorPolicy, TopoSortSelector, resolve_blue_pairs


class TestErrorPolicy:
    def test_defaults_match_paper(self):
        policy = ErrorPolicy()
        assert policy.confidence_threshold == 0.8
        assert policy.num_bins == 20
        assert policy.binning == "equi-depth"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ErrorPolicy(confidence_threshold=1.2)
        with pytest.raises(ConfigurationError):
            ErrorPolicy(num_bins=0)
        with pytest.raises(ConfigurationError):
            ErrorPolicy(binning="magic")


class TestBlueHandling:
    def test_low_confidence_marks_blue(self, small_bundle):
        """With a coin-flip crowd every answer is low-confidence: all asked
        vertices go BLUE and nothing propagates."""
        _, pairs, vectors, truth = small_bundle
        graph = PairGraph(pairs, vectors)
        coin_flip = SimulatedCrowd(
            truth, WorkerPool(accuracy_range=(0.5, 0.5001), seed=0)
        )
        selector = TopoSortSelector(error_policy=ErrorPolicy(confidence_threshold=0.999))
        result = selector.run(graph, coin_flip.session())
        # Most vertices had to be asked: only the occasional unanimous
        # (confidence-1.0) vote propagates anything.
        assert result.questions >= 0.5 * len(graph)
        assert len(result.state.blue_vertices()) > 0.5 * result.questions
        # Every pair still receives a label via the histogram fallback.
        assert set(result.labels) == set(truth)

    def test_perfect_crowd_produces_no_blue(self, small_bundle):
        _, pairs, vectors, truth = small_bundle
        graph = PairGraph(pairs, vectors)
        selector = TopoSortSelector(error_policy=ErrorPolicy())
        result = selector.run(graph, PerfectCrowd(truth).session())
        assert len(result.state.blue_vertices()) == 0
        accuracy = np.mean([truth[p] == v for p, v in result.labels.items()])
        assert accuracy >= 1 - 2 / len(truth)  # only order violations differ


class TestResolveBluePairs:
    def test_no_blue_returns_empty(self, small_bundle):
        _, pairs, vectors, _ = small_bundle
        graph = PairGraph(pairs, vectors)
        state = ColoringState(graph)
        assert resolve_blue_pairs(graph, state, ErrorPolicy()) == {}

    def test_blue_pairs_follow_histogram(self):
        """A BLUE vertex with high similarity should be colored GREEN when
        every similar colored vertex is GREEN (and vice versa)."""
        # Chain: similar greens on top, reds at the bottom, blue in between.
        vectors = np.array(
            [[0.95, 0.95], [0.9, 0.9], [0.85, 0.85],
             [0.6, 0.6],
             [0.1, 0.1], [0.15, 0.15], [0.05, 0.05]]
        )
        pairs = [(i, i + 100) for i in range(7)]
        graph = PairGraph(pairs, vectors)
        state = ColoringState(graph)
        for vertex in (0, 1, 2):
            state.force_color(vertex, Color.GREEN)
        for vertex in (4, 5, 6):
            state.force_color(vertex, Color.RED)
        state.colors[3] = Color.BLUE
        decided = resolve_blue_pairs(
            graph, state, ErrorPolicy(num_bins=2, binning="equi-depth")
        )
        assert decided == {pairs[3]: True}

    def test_blue_low_similarity_goes_red(self):
        vectors = np.array(
            [[0.95, 0.95], [0.9, 0.9],
             [0.3, 0.3],
             [0.1, 0.1], [0.15, 0.15]]
        )
        pairs = [(i, i + 100) for i in range(5)]
        graph = PairGraph(pairs, vectors)
        state = ColoringState(graph)
        state.force_color(0, Color.GREEN)
        state.force_color(1, Color.GREEN)
        state.force_color(3, Color.RED)
        state.force_color(4, Color.RED)
        state.colors[2] = Color.BLUE
        decided = resolve_blue_pairs(graph, state, ErrorPolicy(num_bins=2))
        assert decided == {pairs[2]: False}

    def test_grouped_graph_blue_members_decided_per_pair(self, small_bundle):
        _, pairs, vectors, truth = small_bundle
        base = PairGraph(pairs, vectors)
        grouped = GroupedGraph(base, split_grouping(vectors, 0.1))
        state = ColoringState(grouped)
        # Color everything by truth of representative, except one blue group.
        blue_vertex = 0
        for vertex in range(len(grouped)):
            if vertex == blue_vertex:
                state.colors[vertex] = Color.BLUE
                continue
            members = grouped.member_pairs(vertex)
            majority = sum(truth[p] for p in members) * 2 > len(members)
            state.force_color(vertex, Color.GREEN if majority else Color.RED)
        decided = resolve_blue_pairs(grouped, state, ErrorPolicy())
        assert set(decided) == set(grouped.member_pairs(blue_vertex))


class TestPowerPlusQuality:
    def test_power_plus_recovers_from_noise(self, small_bundle):
        """With mediocre workers, Power+ should beat plain Power on average
        (the headline of Figs. 12-14)."""
        _, pairs, vectors, truth = small_bundle
        graph = PairGraph(pairs, vectors)

        def accuracy(result):
            return np.mean([truth[p] == v for p, v in result.labels.items()])

        plain_scores, plus_scores = [], []
        for seed in range(6):
            crowd = SimulatedCrowd(truth, WorkerPool(accuracy_range="70", seed=seed))
            plain = TopoSortSelector(seed=seed).run(graph, crowd.session())
            plus = TopoSortSelector(error_policy=ErrorPolicy(), seed=seed).run(
                graph, crowd.session()
            )
            plain_scores.append(accuracy(plain))
            plus_scores.append(accuracy(plus))
        assert np.mean(plus_scores) > np.mean(plain_scores)
