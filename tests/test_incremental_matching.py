"""Tests for the warm-start incremental path-cover engine."""

import sys

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import (
    IncrementalPathCover,
    PairGraph,
    hopcroft_karp,
    minimum_path_cover,
    restricted_adjacency,
)

from conftest import random_vectors


def make_graph(seed: int, n: int, m: int = 3) -> PairGraph:
    vectors = random_vectors(seed, n, m)
    pairs = [(2 * i, 2 * i + 1) for i in range(n)]
    return PairGraph(pairs, vectors)


def reference_cover(graph: PairGraph, active: np.ndarray) -> list[list[int]]:
    sub_adjacency, original_ids = restricted_adjacency(graph.adjacency(), active)
    paths = minimum_path_cover(sub_adjacency)
    return [[int(original_ids[v]) for v in path] for path in paths]


def matching_size_networkx(adjacency, active):
    graph = nx.Graph()
    n = len(adjacency)
    left = {u for u in range(n) if active[u]}
    graph.add_nodes_from(left, bipartite=0)
    for u in left:
        for v in adjacency[u]:
            if active[v]:
                graph.add_edge(u, n + int(v))
    if not graph.edges:
        return 0
    matching = nx.bipartite.maximum_matching(graph, top_nodes=left)
    return sum(1 for k in matching if k in left)


class TestAgainstScratch:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=999))
    def test_cover_identical_across_deletions(self, seed):
        """The engine's cover must equal the scratch decomposition after
        every step of a random deletion sequence — not just cardinality, the
        exact same paths in the same order."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 45))
        graph = make_graph(seed=seed, n=n)
        engine = IncrementalPathCover(graph.build_reachability(), graph.adjacency())
        active = np.ones(n, dtype=bool)
        while active.any():
            assert engine.cover(active) == reference_cover(graph, active)
            remaining = np.flatnonzero(active)
            drop = rng.choice(remaining, size=min(len(remaining), int(rng.integers(1, 4))), replace=False)
            active[drop] = False
        assert engine.cover(active) == []

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=999))
    def test_matching_cardinality_vs_networkx(self, seed):
        """Dilworth: |paths| = |active| - |maximum matching|, with the
        matching size cross-checked against networkx."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 35))
        graph = make_graph(seed=seed + 10_000, n=n)
        engine = IncrementalPathCover(graph.build_reachability(), graph.adjacency())
        active = rng.random(n) < 0.7
        paths = engine.cover(active)
        expected = matching_size_networkx(graph.adjacency(), active)
        assert int(active.sum()) - len(paths) == expected


class TestRegressions:
    def test_empty_active_set(self):
        graph = make_graph(seed=1, n=8)
        engine = IncrementalPathCover(graph.build_reachability())
        assert engine.cover(np.zeros(8, dtype=bool)) == []

    def test_singleton(self):
        graph = make_graph(seed=2, n=8)
        engine = IncrementalPathCover(graph.build_reachability())
        active = np.zeros(8, dtype=bool)
        active[3] = True
        assert engine.cover(active) == [[3]]

    def test_grown_active_set_rejected(self):
        """Coloring only ever shrinks the active set; re-activating a
        deleted vertex would invalidate the warm-start matching."""
        graph = make_graph(seed=3, n=10)
        engine = IncrementalPathCover(graph.build_reachability())
        active = np.ones(10, dtype=bool)
        active[4] = False
        engine.cover(active)
        active[4] = True
        with pytest.raises(GraphError):
            engine.cover(active)

    def test_repeated_cover_without_deletions(self):
        graph = make_graph(seed=4, n=20)
        engine = IncrementalPathCover(graph.build_reachability(), graph.adjacency())
        active = np.ones(20, dtype=bool)
        first = engine.cover(active)
        assert engine.cover(active) == first == reference_cover(graph, active)


class TestIterativeDepthFirstSearch:
    def test_long_chain_does_not_touch_recursion_limit(self):
        """A 3000-deep augmenting structure used to require a
        setrecursionlimit escape hatch; the explicit-stack DFS must handle
        it with the limit untouched."""
        n = 3000
        limit = sys.getrecursionlimit()
        adjacency = [[u, u + 1] if u + 1 < n else [u] for u in range(n)]
        match_left, match_right = hopcroft_karp(adjacency, num_right=n)
        assert sys.getrecursionlimit() == limit
        assert sum(1 for v in match_left if v >= 0) == n
