"""Property tests for the partial order (Eqs. 3-4)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import (
    ancestor_mask,
    comparable,
    descendant_mask,
    dominates,
    incomparable_mask,
    strictly_dominates,
)

VECTOR = st.lists(
    st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]), min_size=1, max_size=4
)


def pair_of_vectors():
    return st.integers(min_value=1, max_value=4).flatmap(
        lambda m: st.tuples(
            st.lists(st.sampled_from([0.0, 0.5, 1.0]), min_size=m, max_size=m),
            st.lists(st.sampled_from([0.0, 0.5, 1.0]), min_size=m, max_size=m),
            st.lists(st.sampled_from([0.0, 0.5, 1.0]), min_size=m, max_size=m),
        )
    )


class TestScalarRelations:
    def test_dominates_reflexive(self):
        v = np.array([0.5, 0.3])
        assert dominates(v, v)
        assert not strictly_dominates(v, v)

    def test_strict_dominance_example(self):
        assert strictly_dominates(np.array([0.5, 0.5]), np.array([0.5, 0.4]))

    def test_incomparable_example(self):
        a, b = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert not dominates(a, b) and not dominates(b, a)
        assert not comparable(a, b)

    @given(pair_of_vectors())
    def test_antisymmetry(self, vectors):
        u, v, _ = (np.array(x) for x in vectors)
        assert not (strictly_dominates(u, v) and strictly_dominates(v, u))

    @given(pair_of_vectors())
    def test_transitivity(self, vectors):
        u, v, w = (np.array(x) for x in vectors)
        if strictly_dominates(u, v) and strictly_dominates(v, w):
            assert strictly_dominates(u, w)

    @given(pair_of_vectors())
    def test_strict_implies_weak(self, vectors):
        u, v, _ = (np.array(x) for x in vectors)
        if strictly_dominates(u, v):
            assert dominates(u, v)


class TestVectorisedMasks:
    @pytest.fixture()
    def matrix(self):
        rng = np.random.default_rng(5)
        return np.round(rng.random((40, 3)) * 4) / 4

    def test_masks_match_scalar_definitions(self, matrix):
        for row in range(matrix.shape[0]):
            vector = matrix[row]
            desc = descendant_mask(matrix, vector)
            anc = ancestor_mask(matrix, vector)
            for other in range(matrix.shape[0]):
                assert desc[other] == strictly_dominates(vector, matrix[other])
                assert anc[other] == strictly_dominates(matrix[other], vector)

    def test_partition_of_universe(self, matrix):
        """Every vertex is descendant, ancestor, equal, or incomparable."""
        for row in range(matrix.shape[0]):
            vector = matrix[row]
            desc = descendant_mask(matrix, vector)
            anc = ancestor_mask(matrix, vector)
            inc = incomparable_mask(matrix, vector)
            equal = (matrix == vector).all(axis=1)
            total = desc.astype(int) + anc.astype(int) + inc.astype(int) + equal.astype(int)
            assert np.all(total == 1)

    def test_no_vector_is_its_own_strict_relative(self, matrix):
        for row in range(matrix.shape[0]):
            assert not descendant_mask(matrix, matrix[row])[row] or (
                # identical duplicate rows are fine; strictness excludes self
                False
            )
