"""The engine's two headline guarantees, end to end.

* **Fault-free equivalence** — with zero fault rates and no budget caps,
  an engine-driven run is byte-identical to the synchronous path (same
  matches, clusters, question counts, cents), and its simulated wall clock
  matches :meth:`LatencyModel.estimate_seconds` within 1 % (in fact
  exactly, by the closed-form argument in ``repro/engine/runtime.py``).
* **Crash resume** — a run killed mid-flight (``crash_after``) and resumed
  from its journal converges to the same final state as a run that never
  crashed, even under fault injection and even when the crash tore the
  journal's last line.
"""

import pytest

from repro.core import PowerConfig, PowerResolver
from repro.crowd import SimulatedCrowd, WorkerPool
from repro.crowd.latency import LatencyModel
from repro.data import restaurant
from repro.engine import CrowdEngine, EngineConfig, FaultProfile
from repro.exceptions import ConfigurationError, SimulatedCrash
from repro.graph import PairGraph
from repro.selection import TopoSortSelector


# ---------------------------------------------------------------------- #
# Fault-free equivalence (the acceptance bar)
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def restaurant_runs():
    """One synchronous and one engine-driven resolve of the same dataset."""
    table = restaurant()
    sync = PowerResolver(PowerConfig(seed=1)).resolve(table)
    engine = CrowdEngine(EngineConfig(faults="none", seed=1))
    driven = PowerResolver(PowerConfig(seed=1)).resolve(table, engine=engine)
    return sync, driven, engine


class TestFaultFreeEquivalence:
    def test_byte_identical_outcome(self, restaurant_runs):
        sync, driven, _ = restaurant_runs
        assert driven.matches == sync.matches
        assert driven.clusters == sync.clusters
        assert driven.questions == sync.questions
        assert driven.iterations == sync.iterations
        assert driven.cost_cents == sync.cost_cents
        assert driven.quality.f_measure == sync.quality.f_measure

    def test_wall_clock_matches_closed_form_within_one_percent(self, restaurant_runs):
        _, driven, engine = restaurant_runs
        batch_sizes = driven.selection.extras["batch_sizes"]
        estimate = LatencyModel().estimate_seconds(batch_sizes)
        clock = driven.selection.extras["wall_clock_seconds"]
        assert clock == engine.wall_clock_seconds
        assert estimate > 0
        assert abs(clock - estimate) / estimate < 0.01
        # The closed form is not just near — it is exact by construction.
        assert clock == pytest.approx(estimate)

    def test_engine_telemetry_attached(self, restaurant_runs):
        sync, driven, _ = restaurant_runs
        telemetry = driven.selection.extras["telemetry"]
        counters = telemetry["counters"]
        assert counters["re_posts"] == 0
        assert counters["expired"] == 0
        assert counters["abandoned"] == 0
        assert counters["machine_answers"] == 0
        assert counters["answered_pairs"] == sync.questions
        # Every posted unit was answered: z per question, no retries.
        assert counters["posted"] == counters["answered_units"]

    def test_session_and_engine_together_rejected(self):
        table = restaurant()
        engine = CrowdEngine(EngineConfig())
        resolver = PowerResolver(PowerConfig(seed=1))
        crowd = resolver.simulated_crowd(table, resolver.candidate_pairs(table))
        with pytest.raises(ConfigurationError):
            resolver.resolve(table, session=crowd.session(), engine=engine)

    def test_mismatched_assignments_rejected(self, small_bundle):
        _, _, _, truth = small_bundle
        crowd = SimulatedCrowd(truth, assignments=3)  # latency default z=5
        engine = CrowdEngine(EngineConfig())
        with pytest.raises(ConfigurationError):
            engine.session(crowd)


# ---------------------------------------------------------------------- #
# Crash resume
# ---------------------------------------------------------------------- #

FLAKY = FaultProfile(
    name="test-flaky",
    no_show_rate=0.2,
    abandon_rate=0.1,
    straggler_rate=0.2,
    spammer_burst_rate=0.05,
)


def _run_selection(small_bundle, engine):
    """One TopoSort selection of the small synthetic bundle via *engine*."""
    _, pairs, vectors, truth = small_bundle
    crowd = SimulatedCrowd(truth, WorkerPool(accuracy_range="80", seed=5))
    session = engine.session(crowd)
    result = TopoSortSelector(seed=0).run(PairGraph(pairs, vectors), session)
    engine.finalize(session)
    return result, session


class TestCrashResume:
    def _config(self, path, **overrides):
        values = dict(faults=FLAKY, seed=11, journal_path=path)
        values.update(overrides)
        return EngineConfig(**values)

    def test_resume_converges_to_straight_through(self, small_bundle, tmp_path):
        straight_journal = tmp_path / "straight.jsonl"
        crashed_journal = tmp_path / "crashed.jsonl"

        # Straight-through reference run (faults on).
        straight_engine = CrowdEngine(self._config(straight_journal))
        straight, straight_session = _run_selection(small_bundle, straight_engine)

        # Crash partway: SimulatedCrash leaves a partial journal behind.
        crash_engine = CrowdEngine(self._config(crashed_journal, crash_after=8))
        with pytest.raises(SimulatedCrash):
            _run_selection(small_bundle, crash_engine)
        assert crashed_journal.exists()
        partial = crashed_journal.read_text().count("\n")
        assert 0 < partial < straight_journal.read_text().count("\n")

        # Resume from the journal and run to completion.
        resume_engine = CrowdEngine(self._config(crashed_journal, resume=True))
        resumed, resumed_session = _run_selection(small_bundle, resume_engine)

        assert resumed.matches == straight.matches
        assert resumed.questions == straight.questions
        assert resumed.cost_cents == straight.cost_cents
        assert resumed.iterations == straight.iterations
        assert resume_engine.wall_clock_seconds == pytest.approx(
            straight_engine.wall_clock_seconds
        )
        # The journaled answers were reused, not re-drawn: the platform
        # cache was pre-seeded before the first ask.
        assert resumed_session.questions_asked == straight_session.questions_asked

    def test_resume_survives_torn_tail(self, small_bundle, tmp_path):
        straight_journal = tmp_path / "straight.jsonl"
        crashed_journal = tmp_path / "crashed.jsonl"
        straight_engine = CrowdEngine(self._config(straight_journal))
        straight, _ = _run_selection(small_bundle, straight_engine)

        crash_engine = CrowdEngine(self._config(crashed_journal, crash_after=8))
        with pytest.raises(SimulatedCrash):
            _run_selection(small_bundle, crash_engine)
        # Tear the last journal line, as a mid-write crash would.
        raw = crashed_journal.read_bytes()
        crashed_journal.write_bytes(raw[:-7])

        resume_engine = CrowdEngine(self._config(crashed_journal, resume=True))
        resumed, _ = _run_selection(small_bundle, resume_engine)
        assert resumed.matches == straight.matches
        assert resumed.cost_cents == straight.cost_cents

    def test_journal_records_final_summary(self, small_bundle, tmp_path):
        from repro.engine import load_journal

        journal = tmp_path / "run.jsonl"
        engine = CrowdEngine(self._config(journal))
        result, session = _run_selection(small_bundle, engine)
        state = load_journal(journal)
        assert state.complete
        assert state.final["questions"] == session.questions_asked
        assert state.final["cost_cents"] == session.cost_cents
        assert state.rounds == session.iterations
        assert len(state.answers) == session.questions_asked
        # Telemetry JSON lands next to the journal by default.
        assert journal.with_suffix(".telemetry.json").exists()


# ---------------------------------------------------------------------- #
# Budget degradation
# ---------------------------------------------------------------------- #


class TestBudgetDegradation:
    def test_money_cap_degrades_to_machine_not_crash(self, small_bundle):
        table, pairs, vectors, truth = small_bundle
        scores = vectors.mean(axis=1)
        engine = CrowdEngine(EngineConfig(faults="none", max_cents=100))
        crowd = SimulatedCrowd(truth, WorkerPool(accuracy_range="80", seed=5))
        session = engine.session(
            crowd,
            machine_scores={p: float(s) for p, s in zip(pairs, scores)},
        )
        result = TopoSortSelector(seed=0).run(PairGraph(pairs, vectors), session)
        engine.finalize(session)
        assert session.cost_cents <= 100
        assert session.machine_answered > 0
        assert engine.telemetry.machine_answers == session.machine_answered
        # The run still produces a full resolution.
        assert result.matches is not None

    def test_question_cap_respected(self, small_bundle):
        _, pairs, vectors, truth = small_bundle
        engine = CrowdEngine(EngineConfig(faults="none", max_questions=10))
        crowd = SimulatedCrowd(truth, WorkerPool(accuracy_range="80", seed=5))
        session = engine.session(crowd)
        TopoSortSelector(seed=0).run(PairGraph(pairs, vectors), session)
        assert session.questions_asked <= 10

    def test_degraded_pairs_get_stable_machine_answers(self, small_bundle):
        _, pairs, vectors, truth = small_bundle
        engine = CrowdEngine(EngineConfig(faults="none", max_questions=0))
        crowd = SimulatedCrowd(truth, WorkerPool(accuracy_range="80", seed=5))
        scores = vectors.mean(axis=1)
        session = engine.session(
            crowd, machine_scores={p: float(s) for p, s in zip(pairs, scores)}
        )
        first = session.ask_batch(pairs[:5])
        second = session.ask_batch(pairs[:5])
        assert first == second  # machine answers are cached, not re-derived
        assert session.questions_asked == 0
        assert session.cost_cents == 0
        for pair, outcome in first.items():
            assert outcome.confidence == 0.5  # routed to the §6 histogram path
