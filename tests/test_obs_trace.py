"""Tests for the tracing layer: nesting, clocks, threads, and grafting."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ObservabilityError
from repro.obs import ManualClock, NULL_SPAN, Span, Tracer, structure, walk


class TestNesting:
    def test_lexical_nesting_becomes_span_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2"):
                with tracer.span("leaf"):
                    pass
        assert structure(tracer.export()) == [
            (0, "outer"), (1, "inner-1"), (1, "inner-2"), (2, "leaf"),
        ]

    def test_sibling_roots_keep_finish_order(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [span["name"] for span in tracer.export()] == ["first", "second"]

    def test_current_tracks_the_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_attributes_at_open_and_via_set_attribute(self):
        tracer = Tracer()
        with tracer.span("s", dataset="restaurant") as span:
            span.set_attribute("pairs", 42)
        exported = tracer.export()[0]
        assert exported["attributes"] == {"dataset": "restaurant", "pairs": 42}

    def test_decorator_form(self):
        tracer = Tracer()

        @tracer.trace("compute")
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert structure(tracer.export()) == [(0, "compute")]

    def test_mismatched_close_is_stack_corruption(self):
        tracer = Tracer()
        ctx_a = tracer.span("a")
        ctx_b = tracer.span("b")
        ctx_a.__enter__()
        ctx_b.__enter__()
        with pytest.raises(ObservabilityError, match="span stack corrupted"):
            ctx_a.__exit__(None, None, None)


class TestDisabled:
    def test_disabled_tracer_hands_out_the_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything", k="v") is NULL_SPAN

    def test_null_span_supports_the_span_protocol(self):
        with NULL_SPAN as span:
            span.set_attribute("ignored", 1)

    def test_disabled_tracer_exports_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("s"):
            pass
        assert tracer.export() == []
        tracer.graft([{"name": "w"}])
        assert tracer.export() == []


class TestErrors:
    def test_exception_marks_the_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        outer = tracer.export()[0]
        inner = outer["children"][0]
        assert inner["status"] == "error"
        assert inner["error"] == "ValueError: boom"
        assert outer["status"] == "error"  # unwinds through the parent too


class TestClocks:
    def test_manual_clock_gives_exact_durations(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(wall=1.0, cpu=0.25)
            with tracer.span("inner"):
                clock.advance(wall=2.0, cpu=0.5)
        outer = tracer.export()[0]
        inner = outer["children"][0]
        assert outer["wall_seconds"] == pytest.approx(3.0)
        assert outer["cpu_seconds"] == pytest.approx(0.75)
        assert inner["wall_seconds"] == pytest.approx(2.0)
        assert inner["cpu_seconds"] == pytest.approx(0.5)


class TestThreads:
    def test_each_thread_gets_its_own_stack(self):
        tracer = Tracer()
        seen = []

        def worker():
            with tracer.span("worker-root"):
                seen.append(tracer.current().name)

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker, name="w-0")
            thread.start()
            thread.join()
        names = {span["name"]: span for span in tracer.export()}
        assert seen == ["worker-root"]
        # The worker's span is its own root, tagged with the thread name,
        # not a child of the span open on the main thread.
        assert set(names) == {"worker-root", "main-root"}
        assert names["worker-root"]["thread"] == "w-0"
        assert "children" not in names["main-root"]


class TestGraft:
    def _worker_export(self, label):
        worker = Tracer()
        with worker.span("shard.task"):
            with worker.span(f"stage-{label}"):
                pass
        return worker.export()

    def test_graft_order_determines_structure(self):
        """Grafting in task order erases worker completion order."""
        exports = [self._worker_export(i) for i in range(3)]

        def merged(order):
            coordinator = Tracer()
            with coordinator.span("shard.join"):
                for index in order:
                    coordinator.graft(exports[index], task=index)
            return coordinator.export()

        # Simulate any completion order: the coordinator always grafts in
        # task-index order, so the merged structure is identical.
        assert structure(merged([0, 1, 2])) == structure(merged([0, 1, 2]))
        tree = merged([0, 1, 2])
        tasks = [
            span["attributes"]["task"]
            for _, span in walk(tree)
            if span["name"] == "shard.task"
        ]
        assert tasks == [0, 1, 2]

    def test_graft_without_open_span_creates_roots(self):
        tracer = Tracer()
        tracer.graft(self._worker_export("x"), task=7)
        roots = tracer.export()
        assert [span["name"] for span in roots] == ["shard.task"]
        assert roots[0]["attributes"]["task"] == 7


class TestSerialization:
    def test_span_roundtrips_through_dicts(self):
        span = Span("s", {"k": "v"})
        span.wall_seconds = 1.5
        span.cpu_seconds = 0.5
        span.status = "error"
        span.error = "ValueError: x"
        span.children = [Span("child")]
        clone = Span.from_dict(span.to_dict())
        assert clone.to_dict() == span.to_dict()

    @given(st.integers(min_value=0, max_value=4))
    def test_structure_is_timing_free(self, depth):
        """Two runs with different clocks have identical structures."""

        def run(clock):
            tracer = Tracer(clock=clock)
            span_stack = [tracer.span(f"level-{i}") for i in range(depth + 1)]
            for ctx in span_stack:
                ctx.__enter__()
                clock.advance(wall=1.0, cpu=1.0)
            for ctx in reversed(span_stack):
                ctx.__exit__(None, None, None)
            return tracer.export()

        fast, slow = ManualClock(), ManualClock()
        slow.advance(wall=100.0, cpu=100.0)
        assert structure(run(fast)) == structure(run(slow))
