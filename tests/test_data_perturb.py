"""Tests for the string-perturbation library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.perturb import (
    HEAVY_PERTURBATIONS,
    LIGHT_PERTURBATIONS,
    abbreviate,
    append_qualifier,
    drop_token,
    initialize_first_token,
    parenthesize_token,
    perturb,
    strip_punctuation,
    swap_tokens,
    truncate,
    typo,
)

WORDS = st.lists(
    st.text(alphabet="abcdef", min_size=1, max_size=6), min_size=1, max_size=5
).map(" ".join)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestIndividualPerturbations:
    def test_typo_changes_length_by_at_most_one(self):
        for seed in range(20):
            out = typo("restaurant", rng(seed))
            assert abs(len(out) - len("restaurant")) <= 1

    def test_typo_leaves_single_char_alone(self):
        assert typo("a", rng()) == "a"

    def test_drop_token_removes_one(self):
        out = drop_token("a b c", rng())
        assert len(out.split()) == 2

    def test_drop_token_never_empties(self):
        assert drop_token("alone", rng()) == "alone"

    def test_parenthesize_last_token(self):
        assert parenthesize_token("cafe ritz buckhead", rng()) == "cafe ritz (buckhead)"

    def test_parenthesize_single_token_noop(self):
        assert parenthesize_token("cafe", rng()) == "cafe"

    def test_strip_punctuation(self):
        assert strip_punctuation("a.b,(c)'d&e", rng()) == "abcde"

    def test_abbreviate_known_form(self):
        assert abbreviate("main street", rng()) == "main st."

    def test_abbreviate_no_candidates(self):
        assert abbreviate("xyzzy", rng()) == "xyzzy"

    def test_swap_tokens(self):
        out = swap_tokens("a b", rng())
        assert out == "b a"

    def test_initialize_first_token(self):
        assert initialize_first_token("john smith", rng()) == "j. smith"

    def test_append_qualifier_adds_token(self):
        out = append_qualifier("cafe", rng())
        assert out.startswith("cafe ") and len(out.split()) == 2

    def test_truncate_keeps_prefix(self):
        out = truncate("a b c d", rng())
        assert "a b c d".startswith(out)
        assert len(out.split()) >= 1


class TestPerturb:
    def test_zero_intensity_is_identity(self):
        assert perturb("anything here", rng(), intensity=0.0) == "anything here"

    def test_invalid_intensity(self):
        with pytest.raises(ValueError):
            perturb("x", rng(), intensity=1.5)

    @settings(max_examples=40, deadline=None)
    @given(WORDS, st.integers(min_value=0, max_value=1000))
    def test_never_returns_empty(self, text, seed):
        for pool in (LIGHT_PERTURBATIONS, HEAVY_PERTURBATIONS):
            out = perturb(text, rng(seed), intensity=1.0, pool=pool)
            assert out.strip()

    def test_deterministic_under_seed(self):
        a = perturb("some text here", rng(42), intensity=0.8)
        b = perturb("some text here", rng(42), intensity=0.8)
        assert a == b
