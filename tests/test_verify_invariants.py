"""Invariant checkers and the VerifyingSession sanitizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd import PerfectCrowd, SimulatedCrowd, WorkerPool
from repro.exceptions import VerificationError
from repro.graph import PairGraph
from repro.graph.grouped_graph import GroupedGraph
from repro.graph.grouping import split_grouping
from repro.selection import SELECTORS
from repro.verify import (
    VerifyingSession,
    check_acyclicity,
    check_cluster_union_find,
    check_grouped_partition,
    check_partial_order,
    check_path_cover,
    check_session_coherence,
    check_topo_layers,
    naive_kahn_layers,
    random_instance,
)


@pytest.fixture(params=range(5))
def instance(request):
    return random_instance(request.param)


class TestGraphInvariants:
    def test_partial_order_laws(self, instance):
        pairs, vectors = instance
        check_partial_order(PairGraph(pairs, vectors))

    def test_acyclicity(self, instance):
        pairs, vectors = instance
        check_acyclicity(PairGraph(pairs, vectors))

    def test_topo_layers_match_kahn(self, instance):
        pairs, vectors = instance
        graph = PairGraph(pairs, vectors)
        check_topo_layers(graph)
        # And on a strict subset of the vertices.
        active = np.zeros(len(graph), dtype=bool)
        active[:: 2] = True
        check_topo_layers(graph, active)

    def test_path_cover_valid(self, instance):
        pairs, vectors = instance
        check_path_cover(PairGraph(pairs, vectors))

    def test_grouped_partition(self, instance):
        pairs, vectors = instance
        base = PairGraph(pairs, vectors)
        grouped = GroupedGraph(base, split_grouping(vectors, 0.15))
        check_grouped_partition(grouped)
        check_partial_order(grouped)
        check_topo_layers(grouped)

    def test_naive_kahn_on_chain(self):
        graph = PairGraph(
            [(0, 1), (2, 3), (4, 5)],
            np.array([[0.9, 0.9], [0.5, 0.5], [0.1, 0.1]]),
        )
        assert naive_kahn_layers(graph) == [[0], [1], [2]]

    def test_reflexive_relation_detected(self, monkeypatch):
        pairs, vectors = random_instance(0)

        def reflexive_mask(self, vertex):
            self._check_vertex(vertex)
            return np.all(self.vectors <= self.vectors[vertex], axis=1)

        monkeypatch.setattr(PairGraph, "descendant_mask", reflexive_mask)
        monkeypatch.setattr(PairGraph, "_dominance_operands", lambda self: None)
        with pytest.raises(VerificationError, match="reflexive"):
            check_partial_order(PairGraph(pairs, vectors))

    def test_overlapping_cover_detected(self, monkeypatch):
        from repro.graph import matching

        original = matching.minimum_path_cover

        def overlapping(adjacency):
            paths = original(adjacency)
            if len(paths) >= 2:
                paths[1] = [paths[0][0]] + paths[1]
            return paths

        monkeypatch.setattr(matching, "minimum_path_cover", overlapping)
        pairs, vectors = random_instance(0)
        with pytest.raises(VerificationError, match="disjoint"):
            check_path_cover(PairGraph(pairs, vectors))


class TestClusterInvariant:
    def test_union_find_matches_bfs(self):
        check_cluster_union_find(10, [(0, 1), (1, 2), (5, 6), (8, 9)])

    def test_empty_matches(self):
        check_cluster_union_find(4, [])


class TestSessionCoherence:
    def test_healthy_session(self):
        pairs, _ = random_instance(0)
        truth = {pair: True for pair in pairs}
        session = PerfectCrowd(truth).session(pairs_per_hit=5)
        session.ask_batch(pairs[:13])
        check_session_coherence(session)

    def test_billing_floor_detected(self, monkeypatch):
        from repro.crowd.platform import CrowdSession

        def floored(self):
            if not self._asked:
                return 0
            return (len(self._asked) // self.pairs_per_hit) * self.crowd.assignments

        monkeypatch.setattr(CrowdSession, "hits", property(floored))
        pairs, _ = random_instance(0)
        truth = {pair: True for pair in pairs}
        session = PerfectCrowd(truth).session(pairs_per_hit=5)
        session.ask_batch(pairs[:13])
        with pytest.raises(VerificationError, match="billing drifted"):
            check_session_coherence(session)


class TestVerifyingSession:
    def _session(self, seed=0, band=None):
        pairs, _ = random_instance(seed)
        truth = {pair: bool(index % 2) for index, pair in enumerate(pairs)}
        if band is None:
            crowd = PerfectCrowd(truth)
        else:
            crowd = SimulatedCrowd(
                truth, pool=WorkerPool(accuracy_range=band, seed=seed), assignments=5
            )
        return pairs, VerifyingSession(crowd.session())

    def test_transparent_for_healthy_sessions(self):
        pairs, session = self._session()
        first = session.ask_batch(pairs[:6])
        again = session.ask(pairs[0])
        assert again == first[pairs[0]]
        assert session.questions_asked == 6
        assert session.iterations == 2

    def test_full_selector_run_under_sanitizer(self):
        pairs, vectors = random_instance(1)
        truth = {pair: bool(index % 2) for index, pair in enumerate(pairs)}
        session = VerifyingSession(PerfectCrowd(truth).session())
        result = SELECTORS["power"](seed=1).run(PairGraph(pairs, vectors), session)
        assert result.questions == session.questions_asked

    def test_catches_cache_poisoning(self):
        # PerfectCrowd recomputes; only SimulatedCrowd uses the answer cache.
        pairs, session = self._session(band="80")
        session.ask_batch(pairs[:3])
        # Corrupt the platform's cache behind the sanitizer's back.
        inner = session._inner
        poisoned = inner.crowd._cache[pairs[0]]
        inner.crowd._cache[pairs[0]] = type(poisoned)(
            answer=not poisoned.answer,
            confidence=poisoned.confidence,
            votes=poisoned.votes,
        )
        with pytest.raises(VerificationError, match="cache incoherence"):
            session.ask(pairs[0])

    def test_catches_billing_drift(self, monkeypatch):
        from repro.crowd.platform import CrowdSession

        pairs, session = self._session()
        session.ask_batch(pairs[:3])

        def inflated(self):
            return 999

        monkeypatch.setattr(CrowdSession, "hits", property(inflated))
        with pytest.raises(VerificationError, match="billing drifted"):
            session.ask(pairs[4])

    def test_catches_confidence_out_of_range(self):
        pairs, session = self._session()
        inner = session._inner

        class Lying:
            def __getattr__(self, name):
                return getattr(inner, name)

            def ask_batch(self, batch):
                answers = inner.ask_batch(batch)
                return {
                    pair: type(outcome)(
                        answer=outcome.answer,
                        confidence=1.5,
                        votes=outcome.votes,
                    )
                    for pair, outcome in answers.items()
                }

        lying = VerifyingSession(Lying())
        with pytest.raises(VerificationError, match="confidence"):
            lying.ask(pairs[0])
