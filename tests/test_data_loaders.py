"""Tests for CSV round-trip."""

import pytest

from repro.data import Table, load_csv, save_csv
from repro.exceptions import DataError


class TestRoundTrip:
    def test_with_ground_truth(self, tmp_path):
        table = Table.from_rows(
            "t", ("a", "b"), [("x", "1"), ("y", "2")], entity_ids=[3, 4]
        )
        path = tmp_path / "t.csv"
        save_csv(table, path)
        loaded = load_csv(path)
        assert loaded.attributes == ("a", "b")
        assert [r.values for r in loaded] == [("x", "1"), ("y", "2")]
        assert [r.entity_id for r in loaded] == [3, 4]

    def test_without_ground_truth(self, tmp_path):
        table = Table.from_rows("t", ("a",), [("x",)])
        path = tmp_path / "t.csv"
        save_csv(table, path)
        loaded = load_csv(path)
        assert not loaded.has_ground_truth()

    def test_values_with_commas_and_quotes(self, tmp_path):
        table = Table.from_rows("t", ("a",), [('he said "hi", twice',)], entity_ids=[0])
        path = tmp_path / "t.csv"
        save_csv(table, path)
        assert load_csv(path)[0].values == ('he said "hi", twice',)

    def test_name_defaults_to_stem(self, tmp_path):
        table = Table.from_rows("x", ("a",), [("v",)])
        path = tmp_path / "mydata.csv"
        save_csv(table, path)
        assert load_csv(path).name == "mydata"


class TestLoadErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            load_csv(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\nx\n")
        with pytest.raises(DataError, match="expected 2 columns"):
            load_csv(path)

    def test_non_integer_entity_id(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,entity_id\nx,notanumber\n")
        with pytest.raises(DataError, match="not an integer"):
            load_csv(path)
