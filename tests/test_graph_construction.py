"""Tests for the three graph-construction algorithms (§4.1).

The load-bearing property: brute force, quicksort, the range-tree index and
the vectorised reference all produce exactly the same dominance edge set.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import (
    brute_force_edges,
    index_edges,
    quicksort_edges,
    vectorized_edges,
)

from conftest import random_vectors


def matrix_strategy():
    return st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    ).map(lambda args: random_vectors(args[2], args[0], args[1]))


class TestAgreement:
    @settings(max_examples=30, deadline=None)
    @given(matrix_strategy())
    def test_quicksort_equals_brute_force(self, vectors):
        assert quicksort_edges(vectors) == brute_force_edges(vectors)

    @settings(max_examples=30, deadline=None)
    @given(matrix_strategy())
    def test_vectorized_equals_brute_force(self, vectors):
        assert vectorized_edges(vectors) == brute_force_edges(vectors)

    @settings(max_examples=30, deadline=None)
    @given(matrix_strategy())
    def test_index_equals_brute_force(self, vectors):
        if vectors.shape[1] >= 2:
            assert index_edges(vectors) == brute_force_edges(vectors)

    def test_agreement_on_real_vectors(self, small_bundle):
        _, _, vectors, _ = small_bundle
        reference = vectorized_edges(vectors)
        assert brute_force_edges(vectors) == reference
        assert quicksort_edges(vectors) == reference
        assert index_edges(vectors) == reference


class TestEdgeSemantics:
    def test_simple_chain(self):
        vectors = np.array([[1.0, 1.0], [0.5, 0.5], [0.0, 0.0]])
        edges = brute_force_edges(vectors)
        assert edges == {(0, 1), (0, 2), (1, 2)}

    def test_incomparable_vertices(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert brute_force_edges(vectors) == set()

    def test_equal_vectors_no_edge(self):
        vectors = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert brute_force_edges(vectors) == set()
        assert quicksort_edges(vectors) == set()
        assert index_edges(vectors) == set()

    def test_empty_input(self):
        vectors = np.empty((0, 3))
        assert brute_force_edges(vectors) == set()
        assert quicksort_edges(vectors) == set()

    def test_single_vertex(self):
        vectors = np.array([[0.5]])
        assert brute_force_edges(vectors) == set()

    def test_edges_form_dag(self):
        vectors = random_vectors(3, 30, 3)
        edges = vectorized_edges(vectors)
        # Antisymmetry: no 2-cycles.
        assert not any((b, a) in edges for a, b in edges)
        # Transitivity: the relation is its own closure.
        for a, b in edges:
            for c, d in edges:
                if b == c:
                    assert (a, d) in edges

    def test_quicksort_seed_does_not_change_result(self):
        vectors = random_vectors(11, 50, 3)
        assert quicksort_edges(vectors, seed=0) == quicksort_edges(vectors, seed=99)

    def test_index_invalid_attributes(self):
        vectors = np.array([[0.5, 0.5]])
        with pytest.raises(GraphError):
            index_edges(vectors, indexed_attributes=(0, 0))
        with pytest.raises(GraphError):
            index_edges(vectors, indexed_attributes=(0, 5))


class TestBlockedDominanceListsEdgeCases:
    """Regression battery for the blocked (tiled) adjacency kernel.

    Every case must be *bit-identical* to the scalar per-vertex reference
    (a plain broadcast over one row at a time), including the shapes and
    dtypes of the returned index arrays.
    """

    @staticmethod
    def _scalar_reference(dominant, dominated, exclude_diagonal=True):
        dominant = np.asarray(dominant, dtype=np.float64)
        dominated = np.asarray(dominated, dtype=np.float64)
        lists = []
        for u in range(dominant.shape[0]):
            row = dominant[u]
            mask = np.all(dominated <= row, axis=1) & np.any(dominated < row, axis=1)
            if exclude_diagonal and u < dominated.shape[0]:
                mask[u] = False
            lists.append(np.flatnonzero(mask))
        return lists

    def _assert_identical(self, dominant, dominated=None, **kwargs):
        from repro.graph.construction import blocked_dominance_lists

        if dominated is None:
            dominated = dominant
        fast = blocked_dominance_lists(np.asarray(dominant, dtype=np.float64),
                                       np.asarray(dominated, dtype=np.float64),
                                       **kwargs)
        slow = self._scalar_reference(
            dominant, dominated, exclude_diagonal=kwargs.get("exclude_diagonal", True)
        )
        assert len(fast) == len(slow)
        for u, (fast_row, slow_row) in enumerate(zip(fast, slow)):
            assert fast_row.dtype.kind == "i", f"row {u} has dtype {fast_row.dtype}"
            assert np.array_equal(fast_row, slow_row), (
                f"row {u}: blocked {fast_row.tolist()} != scalar {slow_row.tolist()}"
            )

    def test_empty_block(self):
        """Zero vectors: one empty list per vertex — i.e. none at all."""
        self._assert_identical(np.empty((0, 3)))

    def test_empty_block_with_attributes_zero(self):
        self._assert_identical(np.empty((0, 0)))

    def test_singleton_block(self):
        """One vertex: never dominates itself, whatever the block size."""
        self._assert_identical(np.array([[0.4, 0.8, 0.1]]), block_size=1)
        self._assert_identical(np.array([[0.4, 0.8, 0.1]]), block_size=1024)

    def test_all_identical_vectors(self):
        """Equal rows are mutually incomparable: no strict component."""
        vectors = np.full((9, 4), 0.5)
        self._assert_identical(vectors, block_size=4)
        from repro.graph.construction import blocked_dominance_lists

        lists = blocked_dominance_lists(vectors, vectors, block_size=4)
        assert all(len(row) == 0 for row in lists)

    def test_block_size_one(self):
        self._assert_identical(random_vectors(17, 13, 3), block_size=1)

    def test_block_size_larger_than_input(self):
        self._assert_identical(random_vectors(18, 13, 3), block_size=4096)

    def test_block_boundary_sizes(self):
        """n exactly at, one below, and one above a block multiple."""
        for n in (7, 8, 9):
            self._assert_identical(random_vectors(19, n, 3), block_size=4)

    def test_distinct_operands(self):
        """Grouped-graph shape: lower bounds dominate upper bounds."""
        upper = random_vectors(20, 11, 3)
        lower = np.clip(upper - 0.2, 0.0, 1.0)
        self._assert_identical(lower, upper, block_size=4, exclude_diagonal=False)

    def test_mismatched_shapes_rejected(self):
        """The kernel requires row-aligned operands of identical shape."""
        from repro.graph.construction import blocked_dominance_lists

        with pytest.raises(GraphError):
            blocked_dominance_lists(random_vectors(20, 6, 3), random_vectors(21, 11, 3))

    def test_single_attribute(self):
        self._assert_identical(random_vectors(22, 10, 1), block_size=3)
