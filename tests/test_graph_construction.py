"""Tests for the three graph-construction algorithms (§4.1).

The load-bearing property: brute force, quicksort, the range-tree index and
the vectorised reference all produce exactly the same dominance edge set.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import (
    brute_force_edges,
    index_edges,
    quicksort_edges,
    vectorized_edges,
)

from conftest import random_vectors


def matrix_strategy():
    return st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    ).map(lambda args: random_vectors(args[2], args[0], args[1]))


class TestAgreement:
    @settings(max_examples=30, deadline=None)
    @given(matrix_strategy())
    def test_quicksort_equals_brute_force(self, vectors):
        assert quicksort_edges(vectors) == brute_force_edges(vectors)

    @settings(max_examples=30, deadline=None)
    @given(matrix_strategy())
    def test_vectorized_equals_brute_force(self, vectors):
        assert vectorized_edges(vectors) == brute_force_edges(vectors)

    @settings(max_examples=30, deadline=None)
    @given(matrix_strategy())
    def test_index_equals_brute_force(self, vectors):
        if vectors.shape[1] >= 2:
            assert index_edges(vectors) == brute_force_edges(vectors)

    def test_agreement_on_real_vectors(self, small_bundle):
        _, _, vectors, _ = small_bundle
        reference = vectorized_edges(vectors)
        assert brute_force_edges(vectors) == reference
        assert quicksort_edges(vectors) == reference
        assert index_edges(vectors) == reference


class TestEdgeSemantics:
    def test_simple_chain(self):
        vectors = np.array([[1.0, 1.0], [0.5, 0.5], [0.0, 0.0]])
        edges = brute_force_edges(vectors)
        assert edges == {(0, 1), (0, 2), (1, 2)}

    def test_incomparable_vertices(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert brute_force_edges(vectors) == set()

    def test_equal_vectors_no_edge(self):
        vectors = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert brute_force_edges(vectors) == set()
        assert quicksort_edges(vectors) == set()
        assert index_edges(vectors) == set()

    def test_empty_input(self):
        vectors = np.empty((0, 3))
        assert brute_force_edges(vectors) == set()
        assert quicksort_edges(vectors) == set()

    def test_single_vertex(self):
        vectors = np.array([[0.5]])
        assert brute_force_edges(vectors) == set()

    def test_edges_form_dag(self):
        vectors = random_vectors(3, 30, 3)
        edges = vectorized_edges(vectors)
        # Antisymmetry: no 2-cycles.
        assert not any((b, a) in edges for a, b in edges)
        # Transitivity: the relation is its own closure.
        for a, b in edges:
            for c, d in edges:
                if b == c:
                    assert (a, d) in edges

    def test_quicksort_seed_does_not_change_result(self):
        vectors = random_vectors(11, 50, 3)
        assert quicksort_edges(vectors, seed=0) == quicksort_edges(vectors, seed=99)

    def test_index_invalid_attributes(self):
        vectors = np.array([[0.5, 0.5]])
        with pytest.raises(GraphError):
            index_edges(vectors, indexed_attributes=(0, 0))
        with pytest.raises(GraphError):
            index_edges(vectors, indexed_attributes=(0, 5))
