"""Tests for incremental (streaming) entity resolution."""

import pytest

from repro.core import IncrementalResolver, PowerConfig, stream_in_batches
from repro.crowd import PerfectCrowd
from repro.data import restaurant, true_match_pairs
from repro.data.ground_truth import pair_truth
from repro.exceptions import ConfigurationError, DataError


@pytest.fixture(scope="module")
def streamed(small_table):
    return stream_in_batches(small_table, batch_size=20, worker_band="90")


class TestStreaming:
    def test_all_records_ingested(self, streamed, small_table):
        assert len(streamed.table) == len(small_table)
        assert streamed.batches == 3

    def test_quality_reasonable(self, streamed):
        assert streamed.quality().f_measure > 0.8

    def test_cost_accounting_accumulates(self, streamed):
        assert streamed.total_questions > 0
        assert streamed.total_iterations >= streamed.batches - 1
        assert streamed.total_cost_cents > 0

    def test_clusters_partition_records(self, streamed, small_table):
        clusters = streamed.clusters()
        members = sorted(r for cluster in clusters for r in cluster)
        assert members == list(range(len(small_table)))

    def test_summary_text(self, streamed):
        text = streamed.summary()
        assert "records seen" in text and "quality" in text


class TestCandidateCoverage:
    def test_incremental_join_matches_batch_join(self, small_table):
        """The streaming inverted-index join must find the same candidate
        pairs as the one-shot join at the same threshold."""
        from repro.similarity import similar_pairs

        resolver = stream_in_batches(small_table, batch_size=7, worker_band="90")
        batch = set(similar_pairs(small_table, resolver.config.pruning_threshold))
        assert set(resolver.labels) == batch


class TestBatchAPI:
    def test_oracle_session_per_batch(self, small_table):
        resolver = IncrementalResolver(
            small_table.attributes, config=PowerConfig(seed=0)
        )
        rows = [record.values for record in small_table]
        ids = [record.entity_id for record in small_table]
        half = len(rows) // 2
        # First batch with an explicit oracle session.
        resolver.add_batch(rows[:half], entity_ids=ids[:half])
        # Build oracle over second batch's candidates: simplest is to add
        # with auto-simulated 90-band crowd; here exercise explicit session.
        for start in range(half, len(rows), 10):
            chunk_rows = rows[start : start + 10]
            chunk_ids = ids[start : start + 10]
            # Pre-register records on a scratch resolver to learn candidates
            # is overkill; just use the ground-truth-backed auto crowd.
            resolver.add_batch(chunk_rows, entity_ids=chunk_ids)
        assert len(resolver.table) == len(rows)

    def test_empty_batch_rejected(self):
        resolver = IncrementalResolver(("a",))
        with pytest.raises(DataError):
            resolver.add_batch([])

    def test_mismatched_entity_ids(self):
        resolver = IncrementalResolver(("a",))
        with pytest.raises(DataError):
            resolver.add_batch([("x",)], entity_ids=[1, 2])

    def test_no_truth_and_no_session(self):
        resolver = IncrementalResolver(("a",))
        resolver.add_batch([("alpha beta gamma",)])  # no pairs yet: fine
        with pytest.raises(ConfigurationError):
            resolver.add_batch([("alpha beta gamma",)])  # pair but no crowd

    def test_quality_requires_truth(self):
        resolver = IncrementalResolver(("a",))
        resolver.add_batch([("solo",)])
        with pytest.raises(DataError):
            resolver.quality()

    def test_invalid_batch_size(self, small_table):
        with pytest.raises(ConfigurationError):
            stream_in_batches(small_table, batch_size=0)


class TestBatchSubstrateParity:
    def test_candidates_match_scalar_inverted_index(self, small_table):
        """The TokenIndex candidate sweep equals a scalar inverted-list
        probe with exact Jaccard verification — the pre-refactor reference."""
        from collections import defaultdict

        from repro.similarity.jaccard import jaccard
        from repro.similarity.tokenize import word_tokens

        resolver = stream_in_batches(small_table, batch_size=9, worker_band="90")
        threshold = resolver.config.pruning_threshold

        # Scalar reference: ad-hoc token -> record ids inverted index.
        token_index = defaultdict(list)
        record_tokens = []
        for record_id in range(len(resolver.table)):
            tokens = word_tokens(resolver.table.record_text(record_id))
            record_tokens.append(tokens)
            for token in tokens:
                token_index[token].append(record_id)

        def reference_candidates(record_id):
            tokens = record_tokens[record_id]
            if not tokens:
                return []
            seen = {
                other
                for token in tokens
                for other in token_index[token]
                if other < record_id
            }
            return sorted(
                (other, record_id)
                for other in seen
                if jaccard(tokens, record_tokens[other]) >= threshold
            )

        for record_id in range(len(resolver.table)):
            assert resolver._candidates_for(record_id) == reference_candidates(
                record_id
            ), f"candidate parity broke at record {record_id}"

    def test_empty_token_records_never_pair(self):
        """Empty-vs-empty Jaccard is 1.0 in the batch kernel, but empty
        records post no tokens to an inverted index — the stream must keep
        the inverted-index convention."""
        resolver = IncrementalResolver(("a",), config=PowerConfig(seed=0))
        report = resolver.add_batch(
            [("",), ("",), ("alpha beta",)], entity_ids=[1, 2, 3]
        )
        assert report["new_pairs"] == 0
        assert resolver._candidates_for(0) == []
        assert resolver._candidates_for(1) == []

    def test_batch_and_scalar_vectors_agree_end_to_end(self, small_table):
        """Streaming with the vectorized similarity substrate must replay
        the scalar substrate's run byte for byte."""
        runs = [
            stream_in_batches(
                small_table,
                batch_size=12,
                config=PowerConfig(seed=0, use_batch_similarity=flag),
                worker_band="90",
            )
            for flag in (True, False)
        ]
        fast, slow = runs
        assert fast.labels == slow.labels
        assert fast.total_questions == slow.total_questions
        assert fast.total_iterations == slow.total_iterations
        assert fast.total_cost_cents == slow.total_cost_cents
        assert fast.clusters() == slow.clusters()


class TestIncrementalVsOneShot:
    def test_same_clusters_with_oracle(self, small_table):
        """With perfect answers, streaming resolution reaches (nearly) the
        same clustering as one-shot resolution; small deviations can only
        come from partial-order violations met in a different order."""
        from repro.core import PowerResolver

        one_shot = PowerResolver(PowerConfig(seed=0, error_tolerant=False))
        pairs = one_shot.candidate_pairs(small_table)
        truth = pair_truth(small_table, pairs)
        result = one_shot.resolve(
            small_table, session=PerfectCrowd(truth).session()
        )
        streamed = stream_in_batches(
            small_table,
            batch_size=15,
            config=PowerConfig(seed=0, error_tolerant=False),
            worker_band=(0.999, 1.0),
        )
        gold = true_match_pairs(small_table)
        assert abs(
            streamed.quality().f_measure
            - result.quality.f_measure
        ) < 0.05
