"""Tests for incremental (streaming) entity resolution."""

import pytest

from repro.core import IncrementalResolver, PowerConfig, stream_in_batches
from repro.crowd import PerfectCrowd
from repro.data import restaurant, true_match_pairs
from repro.data.ground_truth import pair_truth
from repro.exceptions import ConfigurationError, DataError


@pytest.fixture(scope="module")
def streamed(small_table):
    return stream_in_batches(small_table, batch_size=20, worker_band="90")


class TestStreaming:
    def test_all_records_ingested(self, streamed, small_table):
        assert len(streamed.table) == len(small_table)
        assert streamed.batches == 3

    def test_quality_reasonable(self, streamed):
        assert streamed.quality().f_measure > 0.8

    def test_cost_accounting_accumulates(self, streamed):
        assert streamed.total_questions > 0
        assert streamed.total_iterations >= streamed.batches - 1
        assert streamed.total_cost_cents > 0

    def test_clusters_partition_records(self, streamed, small_table):
        clusters = streamed.clusters()
        members = sorted(r for cluster in clusters for r in cluster)
        assert members == list(range(len(small_table)))

    def test_summary_text(self, streamed):
        text = streamed.summary()
        assert "records seen" in text and "quality" in text


class TestCandidateCoverage:
    def test_incremental_join_matches_batch_join(self, small_table):
        """The streaming inverted-index join must find the same candidate
        pairs as the one-shot join at the same threshold."""
        from repro.similarity import similar_pairs

        resolver = stream_in_batches(small_table, batch_size=7, worker_band="90")
        batch = set(similar_pairs(small_table, resolver.config.pruning_threshold))
        assert set(resolver.labels) == batch


class TestBatchAPI:
    def test_oracle_session_per_batch(self, small_table):
        resolver = IncrementalResolver(
            small_table.attributes, config=PowerConfig(seed=0)
        )
        rows = [record.values for record in small_table]
        ids = [record.entity_id for record in small_table]
        half = len(rows) // 2
        # First batch with an explicit oracle session.
        resolver.add_batch(rows[:half], entity_ids=ids[:half])
        # Build oracle over second batch's candidates: simplest is to add
        # with auto-simulated 90-band crowd; here exercise explicit session.
        for start in range(half, len(rows), 10):
            chunk_rows = rows[start : start + 10]
            chunk_ids = ids[start : start + 10]
            # Pre-register records on a scratch resolver to learn candidates
            # is overkill; just use the ground-truth-backed auto crowd.
            resolver.add_batch(chunk_rows, entity_ids=chunk_ids)
        assert len(resolver.table) == len(rows)

    def test_empty_batch_rejected(self):
        resolver = IncrementalResolver(("a",))
        with pytest.raises(DataError):
            resolver.add_batch([])

    def test_mismatched_entity_ids(self):
        resolver = IncrementalResolver(("a",))
        with pytest.raises(DataError):
            resolver.add_batch([("x",)], entity_ids=[1, 2])

    def test_no_truth_and_no_session(self):
        resolver = IncrementalResolver(("a",))
        resolver.add_batch([("alpha beta gamma",)])  # no pairs yet: fine
        with pytest.raises(ConfigurationError):
            resolver.add_batch([("alpha beta gamma",)])  # pair but no crowd

    def test_quality_requires_truth(self):
        resolver = IncrementalResolver(("a",))
        resolver.add_batch([("solo",)])
        with pytest.raises(DataError):
            resolver.quality()

    def test_invalid_batch_size(self, small_table):
        with pytest.raises(ConfigurationError):
            stream_in_batches(small_table, batch_size=0)


class TestIncrementalVsOneShot:
    def test_same_clusters_with_oracle(self, small_table):
        """With perfect answers, streaming resolution reaches (nearly) the
        same clustering as one-shot resolution; small deviations can only
        come from partial-order violations met in a different order."""
        from repro.core import PowerResolver

        one_shot = PowerResolver(PowerConfig(seed=0, error_tolerant=False))
        pairs = one_shot.candidate_pairs(small_table)
        truth = pair_truth(small_table, pairs)
        result = one_shot.resolve(
            small_table, session=PerfectCrowd(truth).session()
        )
        streamed = stream_in_batches(
            small_table,
            batch_size=15,
            config=PowerConfig(seed=0, error_tolerant=False),
            worker_band=(0.999, 1.0),
        )
        gold = true_match_pairs(small_table)
        assert abs(
            streamed.quality().f_measure
            - result.quality.f_measure
        ) < 0.05
