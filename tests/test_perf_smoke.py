"""Perf smoke gate: the fast paths must never be slower than the references.

Skipped unless ``POWER_BENCH_FAST=1`` (the smoke target), so the tier-1 suite
stays timing-free; ``make bench-smoke`` runs it alongside the standalone
benchmark.  The full floors (5x vectorize, 3x construct) are enforced by
``benchmarks/bench_perf_pipeline.py`` on the full-size workload.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import perf

pytestmark = pytest.mark.skipif(
    os.environ.get("POWER_BENCH_FAST") != "1",
    reason="perf smoke runs only under POWER_BENCH_FAST=1",
)


@pytest.fixture(scope="module")
def report() -> dict:
    return perf.run_pipeline_benchmark()


def test_fast_paths_beat_references(report):
    failures = perf.acceptance_failures(report)
    assert not failures, "; ".join(failures)
    for stage in report["stages"]:
        assert stage["speedup"] >= 1.0, (
            f"{stage['stage']}: fast path slower than the scalar reference "
            f"({stage['fast']['seconds']}s vs {stage['reference']['seconds']}s)"
        )


def test_stages_are_equivalent(report):
    assert all(stage["equivalent"] for stage in report["stages"])


def test_end_to_end_resolution_identity():
    assert perf.verify_resolution_identity()
