"""Tests for the simulated platform, sessions, and cost accounting."""

import numpy as np
import pytest

from repro.crowd import PerfectCrowd, SimulatedCrowd, WorkerPool, ambiguity_difficulty
from repro.exceptions import ConfigurationError, CrowdError

TRUTH = {(0, 1): True, (0, 2): False, (1, 2): False, (3, 4): True}


class TestSimulatedCrowd:
    def test_answers_cached_across_sessions(self):
        crowd = SimulatedCrowd(TRUTH, WorkerPool(accuracy_range="70", seed=1))
        first = crowd.answer((0, 1))
        second = crowd.answer((0, 1))
        assert first is second

    def test_same_answer_for_both_orientations(self):
        crowd = SimulatedCrowd(TRUTH, WorkerPool(seed=1))
        assert crowd.answer((1, 0)) is crowd.answer((0, 1))

    def test_unknown_pair_raises(self):
        crowd = SimulatedCrowd(TRUTH)
        with pytest.raises(CrowdError):
            crowd.answer((7, 8))

    def test_high_accuracy_pool_mostly_correct(self):
        crowd = SimulatedCrowd(TRUTH, WorkerPool(accuracy_range=(0.99, 1.0), seed=2))
        for pair, truth in TRUTH.items():
            assert crowd.answer(pair).answer == truth

    def test_votes_have_assignment_size(self):
        crowd = SimulatedCrowd(TRUTH, assignments=7)
        assert len(crowd.answer((0, 1)).votes) == 7

    def test_invalid_assignments(self):
        with pytest.raises(ConfigurationError):
            SimulatedCrowd(TRUTH, assignments=0)

    def test_invalid_aggregation(self):
        with pytest.raises(ConfigurationError):
            SimulatedCrowd(TRUTH, aggregation="mean")

    def test_difficulty_mapping_reduces_errors(self):
        truth = {(i, i + 1): True for i in range(0, 600, 2)}
        pool = WorkerPool(accuracy_range="70", seed=3)
        uniform = SimulatedCrowd(truth, pool)
        easy = SimulatedCrowd(
            truth, pool, difficulty={pair: 0.05 for pair in truth}
        )
        uniform_wrong = sum(uniform.answer(p).answer != truth[p] for p in truth)
        easy_wrong = sum(easy.answer(p).answer != truth[p] for p in truth)
        assert easy_wrong < uniform_wrong


class TestPerfectCrowd:
    def test_always_truth_with_full_confidence(self):
        crowd = PerfectCrowd(TRUTH)
        for pair, truth in TRUTH.items():
            outcome = crowd.answer(pair)
            assert outcome.answer == truth
            assert outcome.confidence == 1.0

    def test_unknown_pair_still_raises(self):
        with pytest.raises(CrowdError):
            PerfectCrowd(TRUTH).answer((9, 10))


class TestCrowdSession:
    def test_question_and_iteration_accounting(self):
        session = PerfectCrowd(TRUTH).session()
        session.ask_batch([(0, 1), (0, 2)])
        session.ask((1, 2))
        assert session.questions_asked == 3
        assert session.iterations == 2

    def test_reask_not_billed(self):
        session = PerfectCrowd(TRUTH).session()
        session.ask((0, 1))
        session.ask((0, 1))
        assert session.questions_asked == 1
        assert session.iterations == 2  # still two round trips

    def test_empty_batch_is_free(self):
        session = PerfectCrowd(TRUTH).session()
        assert session.ask_batch([]) == {}
        assert session.iterations == 0

    def test_cost_model(self):
        # 10 pairs per HIT, 10 cents per HIT, 5 assignments:
        # 3 questions -> 1 HIT x 5 workers -> 50 cents.
        session = PerfectCrowd(TRUTH).session(pairs_per_hit=10, cents_per_hit=10)
        session.ask_batch([(0, 1), (0, 2), (1, 2)])
        assert session.hits == 5
        assert session.cost_cents == 50

    def test_cost_rounds_up_per_hit(self):
        truth = {(i, i + 1): True for i in range(0, 30, 2)}
        session = PerfectCrowd(truth).session(pairs_per_hit=10, cents_per_hit=10)
        session.ask_batch(list(truth)[:11])
        assert session.hits == 2 * 5

    def test_zero_questions_zero_cost(self):
        session = PerfectCrowd(TRUTH).session()
        assert session.cost_cents == 0

    def test_invalid_pricing(self):
        crowd = PerfectCrowd(TRUTH)
        with pytest.raises(ConfigurationError):
            crowd.session(pairs_per_hit=0)
        with pytest.raises(ConfigurationError):
            crowd.session(cents_per_hit=-1)

    def test_sessions_share_platform_answers(self):
        crowd = SimulatedCrowd(TRUTH, WorkerPool(accuracy_range="70", seed=9))
        a = crowd.session().ask((0, 1))
        b = crowd.session().ask((0, 1))
        assert a == b


class TestCostAccountingSemantics:
    """Pin the billing contract documented on :class:`CrowdSession`.

    The engine's budget guardrails (:mod:`repro.engine.budget`) invert this
    formula, so these are regression tests: if billing semantics drift, the
    guardrails silently over- or under-spend.
    """

    def _truth(self, n):
        return {(i, i + 1): True for i in range(0, 2 * n, 2)}

    def test_many_thin_rounds_cost_same_as_one_fat_batch(self):
        """Billing is whole-run pooled: 25 one-question rounds == one
        25-question batch in money.  Only latency tells them apart."""
        truth = self._truth(25)
        crowd = PerfectCrowd(truth)
        thin = crowd.session(pairs_per_hit=10, cents_per_hit=10)
        for pair in truth:
            thin.ask(pair)
        fat = crowd.session(pairs_per_hit=10, cents_per_hit=10)
        fat.ask_batch(list(truth))
        assert thin.questions_asked == fat.questions_asked == 25
        assert thin.hits == fat.hits == 3 * 5  # ceil(25/10) HITs x z
        assert thin.cost_cents == fat.cost_cents == 150
        # Latency is what distinguishes the two shapes.
        assert thin.iterations == 25 and fat.iterations == 1
        assert thin.batch_sizes == [1] * 25 and fat.batch_sizes == [25]

    def test_partial_hit_billed_in_full_once(self):
        """Ceiling rounding happens once, at the end — not per batch."""
        truth = self._truth(12)
        pairs = list(truth)
        session = PerfectCrowd(truth).session(pairs_per_hit=10, cents_per_hit=10)
        session.ask_batch(pairs[:7])
        assert session.hits == 1 * 5  # partial HIT billed in full...
        session.ask_batch(pairs[7:11])
        assert session.hits == 2 * 5  # ...but not billed again per batch
        session.ask_batch(pairs[11:])
        assert session.hits == 2 * 5  # 12 questions still fit 2 HITs

    def test_reasking_never_adds_hits(self):
        truth = self._truth(11)
        pairs = list(truth)
        session = PerfectCrowd(truth).session(pairs_per_hit=10, cents_per_hit=10)
        session.ask_batch(pairs)
        before = session.cost_cents
        for _ in range(3):
            session.ask_batch(pairs)  # all cached on the platform
        assert session.questions_asked == 11
        assert session.cost_cents == before == 2 * 5 * 10

    def test_assignments_multiply_hits(self):
        truth = self._truth(10)
        crowd = PerfectCrowd(truth, assignments=3)
        session = crowd.session(pairs_per_hit=10, cents_per_hit=10)
        session.ask_batch(list(truth))
        assert session.hits == 1 * 3
        assert session.cost_cents == 30

    def test_budget_guard_inverts_billing_exactly(self):
        """BudgetGuard.affordable_questions must agree with what the
        session would actually bill."""
        from repro.engine import BudgetGuard

        truth = self._truth(40)
        pairs = list(truth)
        guard = BudgetGuard(max_cents=150)  # 3 HITs x 5 workers x 10c
        allowed = guard.affordable_questions(
            asked=0, requested=len(pairs), pairs_per_hit=10,
            cents_per_hit=10, assignments=5,
        )
        assert allowed == 30
        session = PerfectCrowd(truth).session(pairs_per_hit=10, cents_per_hit=10)
        session.ask_batch(pairs[:allowed])
        assert session.cost_cents == 150  # exactly the cap, never over
        # One more question would blow the budget.
        over = PerfectCrowd(truth).session(pairs_per_hit=10, cents_per_hit=10)
        over.ask_batch(pairs[: allowed + 1])
        assert over.cost_cents > 150


class TestAmbiguityDifficulty:
    def test_extremes_are_easy(self):
        vectors = np.array([[1.0, 1.0], [0.0, 0.0], [0.5, 0.5]])
        pairs = [(0, 1), (2, 3), (4, 5)]
        difficulty = ambiguity_difficulty(vectors, pairs, floor=0.1, peak=1.0)
        assert difficulty[(0, 1)] == pytest.approx(0.1)
        assert difficulty[(2, 3)] == pytest.approx(0.1)
        assert difficulty[(4, 5)] == pytest.approx(1.0)
