"""Tests for the simulated platform, sessions, and cost accounting."""

import numpy as np
import pytest

from repro.crowd import PerfectCrowd, SimulatedCrowd, WorkerPool, ambiguity_difficulty
from repro.exceptions import ConfigurationError, CrowdError

TRUTH = {(0, 1): True, (0, 2): False, (1, 2): False, (3, 4): True}


class TestSimulatedCrowd:
    def test_answers_cached_across_sessions(self):
        crowd = SimulatedCrowd(TRUTH, WorkerPool(accuracy_range="70", seed=1))
        first = crowd.answer((0, 1))
        second = crowd.answer((0, 1))
        assert first is second

    def test_same_answer_for_both_orientations(self):
        crowd = SimulatedCrowd(TRUTH, WorkerPool(seed=1))
        assert crowd.answer((1, 0)) is crowd.answer((0, 1))

    def test_unknown_pair_raises(self):
        crowd = SimulatedCrowd(TRUTH)
        with pytest.raises(CrowdError):
            crowd.answer((7, 8))

    def test_high_accuracy_pool_mostly_correct(self):
        crowd = SimulatedCrowd(TRUTH, WorkerPool(accuracy_range=(0.99, 1.0), seed=2))
        for pair, truth in TRUTH.items():
            assert crowd.answer(pair).answer == truth

    def test_votes_have_assignment_size(self):
        crowd = SimulatedCrowd(TRUTH, assignments=7)
        assert len(crowd.answer((0, 1)).votes) == 7

    def test_invalid_assignments(self):
        with pytest.raises(ConfigurationError):
            SimulatedCrowd(TRUTH, assignments=0)

    def test_invalid_aggregation(self):
        with pytest.raises(ConfigurationError):
            SimulatedCrowd(TRUTH, aggregation="mean")

    def test_difficulty_mapping_reduces_errors(self):
        truth = {(i, i + 1): True for i in range(0, 600, 2)}
        pool = WorkerPool(accuracy_range="70", seed=3)
        uniform = SimulatedCrowd(truth, pool)
        easy = SimulatedCrowd(
            truth, pool, difficulty={pair: 0.05 for pair in truth}
        )
        uniform_wrong = sum(uniform.answer(p).answer != truth[p] for p in truth)
        easy_wrong = sum(easy.answer(p).answer != truth[p] for p in truth)
        assert easy_wrong < uniform_wrong


class TestPerfectCrowd:
    def test_always_truth_with_full_confidence(self):
        crowd = PerfectCrowd(TRUTH)
        for pair, truth in TRUTH.items():
            outcome = crowd.answer(pair)
            assert outcome.answer == truth
            assert outcome.confidence == 1.0

    def test_unknown_pair_still_raises(self):
        with pytest.raises(CrowdError):
            PerfectCrowd(TRUTH).answer((9, 10))


class TestCrowdSession:
    def test_question_and_iteration_accounting(self):
        session = PerfectCrowd(TRUTH).session()
        session.ask_batch([(0, 1), (0, 2)])
        session.ask((1, 2))
        assert session.questions_asked == 3
        assert session.iterations == 2

    def test_reask_not_billed(self):
        session = PerfectCrowd(TRUTH).session()
        session.ask((0, 1))
        session.ask((0, 1))
        assert session.questions_asked == 1
        assert session.iterations == 2  # still two round trips

    def test_empty_batch_is_free(self):
        session = PerfectCrowd(TRUTH).session()
        assert session.ask_batch([]) == {}
        assert session.iterations == 0

    def test_cost_model(self):
        # 10 pairs per HIT, 10 cents per HIT, 5 assignments:
        # 3 questions -> 1 HIT x 5 workers -> 50 cents.
        session = PerfectCrowd(TRUTH).session(pairs_per_hit=10, cents_per_hit=10)
        session.ask_batch([(0, 1), (0, 2), (1, 2)])
        assert session.hits == 5
        assert session.cost_cents == 50

    def test_cost_rounds_up_per_hit(self):
        truth = {(i, i + 1): True for i in range(0, 30, 2)}
        session = PerfectCrowd(truth).session(pairs_per_hit=10, cents_per_hit=10)
        session.ask_batch(list(truth)[:11])
        assert session.hits == 2 * 5

    def test_zero_questions_zero_cost(self):
        session = PerfectCrowd(TRUTH).session()
        assert session.cost_cents == 0

    def test_invalid_pricing(self):
        crowd = PerfectCrowd(TRUTH)
        with pytest.raises(ConfigurationError):
            crowd.session(pairs_per_hit=0)
        with pytest.raises(ConfigurationError):
            crowd.session(cents_per_hit=-1)

    def test_sessions_share_platform_answers(self):
        crowd = SimulatedCrowd(TRUTH, WorkerPool(accuracy_range="70", seed=9))
        a = crowd.session().ask((0, 1))
        b = crowd.session().ask((0, 1))
        assert a == b


class TestAmbiguityDifficulty:
    def test_extremes_are_easy(self):
        vectors = np.array([[1.0, 1.0], [0.0, 0.0], [0.5, 0.5]])
        pairs = [(0, 1), (2, 3), (4, 5)]
        difficulty = ambiguity_difficulty(vectors, pairs, floor=0.1, peak=1.0)
        assert difficulty[(0, 1)] == pytest.approx(0.1)
        assert difficulty[(2, 3)] == pytest.approx(0.1)
        assert difficulty[(4, 5)] == pytest.approx(1.0)
