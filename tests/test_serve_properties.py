"""Property tests: interleaved multi-tenant schedules equal serial runs.

The core isolation claim of the serve subsystem is schedule independence:
no matter how N tenants' operations interleave — and no matter how often
the LRU cap forces evict/restore cycles underneath them — each session's
final ``state_sha`` equals the one from running that session's batches
alone, serially, against a direct :class:`StreamingResolver`.  Hypothesis
generates the interleavings (a random merge of per-session batch
sequences, with queries sprinkled in) and the residency pressure
(``max_resident`` of 1 or 2), and the assertion is bit-exact.
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PowerConfig
from repro.serve import PROTOCOL_VERSION, ServeApp
from repro.stream import StreamingResolver

ATTRS = ("name", "city", "cuisine")


def _session_chunks(table, index, batches):
    """Session *index*'s private record slice, split into *batches*."""
    records = list(table)
    span = records[index * 15 :] + records[: index * 15]
    span = span[:30]
    size = max(1, -(-len(span) // batches))
    return [span[start : start + size] for start in range(0, len(span), size)]


def _request(op, session, **fields):
    return {"v": PROTOCOL_VERSION, "id": 0, "op": op, "session": session, **fields}


async def _drive(root, schedule, chunk_lists, max_resident, query_flags):
    """Run one interleaved schedule through a ServeApp; return shas."""
    app = ServeApp(root / "serve", max_sessions=max_resident)
    try:
        for name in chunk_lists:
            response = await app.dispatch(
                _request("create_session", name, attributes=list(ATTRS))
            )
            assert response["ok"], response
        cursors = {name: 0 for name in chunk_lists}
        for step, name in enumerate(schedule):
            chunk = chunk_lists[name][cursors[name]]
            cursors[name] += 1
            response = await app.dispatch(
                _request(
                    "ingest",
                    name,
                    rows=[list(r.values) for r in chunk],
                    entity_ids=[r.entity_id for r in chunk],
                )
            )
            assert response["ok"], response
            if query_flags[step]:
                queried = await app.dispatch(_request("query_clusters", name))
                assert queried["ok"], queried
        shas = {}
        for name in chunk_lists:
            record = await app.dispatch(_request("checkpoint", name))
            assert record["ok"], record
            shas[name] = record["state_sha"]
        return shas, app.registry.evictions
    finally:
        await app.drain()


def _serial_sha(root, table, name, chunks, seed):
    resolver = StreamingResolver(
        ATTRS,
        config=PowerConfig(seed=seed),
        name=name,
        checkpoint_dir=root / f"serial-{name}",
    )
    for chunk in chunks:
        resolver.add_batch(
            [list(r.values) for r in chunk],
            entity_ids=[r.entity_id for r in chunk],
        )
    return resolver.checkpoint()["state_sha"]


class TestScheduleIndependence:
    @pytest.mark.slow
    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_interleaved_sessions_match_serial_runs(self, small_table, data):
        n_sessions = data.draw(st.integers(2, 3), label="sessions")
        max_resident = data.draw(st.sampled_from([1, 2]), label="max_resident")
        batch_counts = [
            data.draw(st.integers(1, 3), label=f"batches[{i}]")
            for i in range(n_sessions)
        ]
        names = [f"t{i}" for i in range(n_sessions)]
        chunk_lists = {
            name: _session_chunks(small_table, i, batch_counts[i])
            for i, name in enumerate(names)
        }
        tokens = [name for name in names for _ in chunk_lists[name]]
        schedule = data.draw(st.permutations(tokens), label="schedule")
        query_flags = [
            data.draw(st.booleans(), label=f"query[{i}]")
            for i in range(len(schedule))
        ]

        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            shas, evictions = asyncio.run(
                _drive(root, schedule, chunk_lists, max_resident, query_flags)
            )
            if max_resident < n_sessions:
                assert evictions >= 1  # the cap actually exerted pressure
            for name in names:
                expected = _serial_sha(
                    root, small_table, name, chunk_lists[name], seed=0
                )
                assert shas[name] == expected, (
                    f"session {name} diverged from its serial run under "
                    f"schedule {schedule} (max_resident={max_resident})"
                )
