"""Tests for DOT export."""

import numpy as np
import pytest

from repro.data import paper_pairs, paper_vectors
from repro.graph import ColoringState, PairGraph
from repro.viz import save_dot, to_dot


@pytest.fixture()
def graph():
    return PairGraph(paper_pairs(), paper_vectors())


class TestToDot:
    def test_structure(self, graph):
        dot = to_dot(graph)
        assert dot.startswith("digraph partial_order {")
        assert dot.rstrip().endswith("}")
        # Every vertex declared.
        for vertex in range(len(graph)):
            assert f"v{vertex} [" in dot

    def test_hasse_edges_only_by_default(self, graph):
        from repro.graph import transitive_reduction

        dot = to_dot(graph)
        assert dot.count(" -> ") == len(transitive_reduction(graph))

    def test_full_relation_option(self, graph):
        dot = to_dot(graph, reduce_edges=False)
        assert dot.count(" -> ") == graph.num_edges

    def test_colors_painted(self, graph):
        state = ColoringState(graph)
        state.apply_answer(0, True)
        dot = to_dot(graph, state=state)
        assert "palegreen" in dot
        # The asked vertex is highlighted.
        assert "penwidth=2" in dot

    def test_blue_color(self, graph):
        state = ColoringState(graph)
        state.mark_blue(3)
        assert "lightblue" in to_dot(graph, state=state)

    def test_labels_use_paper_names(self, graph):
        dot = to_dot(graph)
        assert "p1,2" in dot  # the paper's pair naming

    def test_grouped_vertex_label_truncated(self):
        from repro.graph import GroupedGraph, split_grouping

        base = PairGraph(paper_pairs(), paper_vectors())
        grouped = GroupedGraph(base, [list(range(len(base)))])
        dot = to_dot(grouped)
        assert "... +" in dot


class TestSaveDot:
    def test_writes_file(self, graph, tmp_path):
        path = save_dot(graph, tmp_path / "g.dot")
        content = path.read_text()
        assert content.startswith("digraph")
