"""Tests for the candidate-pair similarity join (the §7.1 pruning step)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Table
from repro.exceptions import ConfigurationError
from repro.similarity import (
    similar_pairs,
    similar_pairs_edit,
    similar_pairs_range,
    top_k_pairs,
)

WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"]
ROW = st.lists(st.sampled_from(WORDS), min_size=1, max_size=4).map(" ".join)


def make_table(rows):
    return Table.from_rows("t", ("text",), [(row,) for row in rows])


class TestSimilarPairs:
    def test_identical_records_always_join(self):
        table = make_table(["alpha beta", "alpha beta", "gamma"])
        assert (0, 1) in similar_pairs(table, 0.9)

    def test_threshold_excludes_dissimilar(self):
        table = make_table(["alpha beta", "gamma delta"])
        assert similar_pairs(table, 0.5) == []

    def test_pairs_are_canonical_and_sorted(self, small_table):
        pairs = similar_pairs(small_table, 0.3)
        assert pairs == sorted(pairs)
        assert all(i < j for i, j in pairs)

    def test_invalid_threshold(self, small_table):
        with pytest.raises(ConfigurationError):
            similar_pairs(small_table, 0.0)
        with pytest.raises(ConfigurationError):
            similar_pairs(small_table, 1.5)

    def test_invalid_method(self, small_table):
        with pytest.raises(ConfigurationError):
            similar_pairs(small_table, 0.5, method="magic")

    def test_qgram_tokens_mode(self, small_table):
        pairs = similar_pairs(small_table, 0.4, tokens="qgram")
        assert all(i < j for i, j in pairs)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(ROW, min_size=2, max_size=25), st.floats(min_value=0.1, max_value=0.9))
    def test_prefix_join_equals_naive(self, rows, threshold):
        """The prefix-filter join must report exactly the naive join's pairs."""
        table = make_table(rows)
        naive = similar_pairs(table, threshold, method="naive")
        prefix = similar_pairs(table, threshold, method="prefix")
        assert naive == prefix

    def test_prefix_join_on_small_table(self, small_table):
        for threshold in (0.2, 0.4, 0.6):
            assert similar_pairs(small_table, threshold, method="naive") == similar_pairs(
                small_table, threshold, method="prefix"
            )


class TestSimilarPairsRange:
    """The range-restricted join that powers the sharded parallel join.

    Contract: pair ``(a, b)`` is owned by its higher record id ``b``, so
    the union of ``similar_pairs_range`` over any disjoint covering tiling
    of ``[0, n)`` equals ``similar_pairs`` pair for pair.
    """

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(ROW, min_size=2, max_size=25),
        st.floats(min_value=0.1, max_value=0.9),
        st.integers(min_value=1, max_value=5),
        st.sampled_from(["naive", "prefix"]),
    )
    def test_tiling_reproduces_full_join(self, rows, threshold, slices, method):
        from repro.shard import vertex_slices

        table = make_table(rows)
        reference = similar_pairs(table, threshold, method=method)
        union = []
        for lo, hi in vertex_slices(len(table), slices):
            union.extend(
                similar_pairs_range(table, threshold, lo, hi, method=method)
            )
        assert sorted(union) == reference
        assert len(union) == len(set(union)), "tiles must be disjoint"

    def test_uneven_tiling_and_qgram_tokens(self, small_table):
        n = len(small_table)
        cuts = [0, 1, n // 3, n // 2, n]  # deliberately lopsided tiling
        for tokens in ("word", "qgram"):
            reference = similar_pairs(
                small_table, 0.3, tokens=tokens, method="prefix"
            )
            union = []
            for lo, hi in zip(cuts, cuts[1:]):
                union.extend(
                    similar_pairs_range(
                        small_table, 0.3, lo, hi, tokens=tokens, method="prefix"
                    )
                )
            assert sorted(union) == reference

    def test_range_owns_pairs_by_higher_id(self, small_table):
        lo, hi = 10, 20
        pairs = similar_pairs_range(small_table, 0.3, lo, hi, method="naive")
        assert all(lo <= j < hi and i < j for i, j in pairs)

    def test_empty_range_and_validation(self, small_table):
        assert similar_pairs_range(small_table, 0.3, 5, 5) == []
        with pytest.raises(ConfigurationError):
            similar_pairs_range(small_table, 0.3, 3, 2)
        with pytest.raises(ConfigurationError):
            similar_pairs_range(small_table, 0.3, 0, len(small_table) + 1)
        with pytest.raises(ConfigurationError):
            similar_pairs_range(small_table, 0.0, 0, 1)
        with pytest.raises(ConfigurationError):
            similar_pairs_range(small_table, 0.3, 0, 1, method="sparse")
        with pytest.raises(ConfigurationError):
            similar_pairs_range(small_table, 0.3, 0, 1, method="magic")
        with pytest.raises(ConfigurationError):
            similar_pairs_range(small_table, 0.3, 0, 1, tokens="byte")

    def test_auto_resolves_by_table_size(self, small_table):
        # small_table is far below the crossover: auto must equal naive.
        assert similar_pairs_range(
            small_table, 0.3, 0, len(small_table), method="auto"
        ) == similar_pairs_range(
            small_table, 0.3, 0, len(small_table), method="naive"
        )


class TestTopKPairs:
    def test_returns_k_most_similar(self):
        table = make_table(["alpha beta", "alpha beta", "alpha", "zeta"])
        top = top_k_pairs(table, 2)
        assert len(top) == 2
        assert top[0][0] >= top[1][0]
        assert top[0][1] == (0, 1)

    def test_k_larger_than_pairs(self):
        table = make_table(["alpha", "beta"])
        assert len(top_k_pairs(table, 10)) == 1

    def test_invalid_k(self, small_table):
        with pytest.raises(ConfigurationError):
            top_k_pairs(small_table, 0)


class TestSimilarPairsEdit:
    def test_identical_records_join(self):
        table = make_table(["alpha beta", "alpha beta"])
        assert similar_pairs_edit(table, 0.9) == [(0, 1)]

    def test_threshold_excludes(self):
        table = make_table(["alpha beta", "zeta"])
        assert similar_pairs_edit(table, 0.8) == []

    def test_matches_naive_edit_similarity(self, small_table):
        from repro.similarity import edit_similarity

        threshold = 0.6
        got = similar_pairs_edit(small_table, threshold, prefilter_overlap=0.0)
        texts = [small_table.record_text(r.record_id) for r in small_table]
        expected = [
            (i, j)
            for i in range(len(texts))
            for j in range(i + 1, len(texts))
            if edit_similarity(texts[i], texts[j]) >= threshold
        ]
        assert got == expected

    def test_prefilter_preserves_high_threshold_pairs(self, small_table):
        strict = similar_pairs_edit(small_table, 0.7, prefilter_overlap=0.0)
        filtered = similar_pairs_edit(small_table, 0.7, prefilter_overlap=0.05)
        # The loose token prefilter may only drop token-disjoint pairs.
        assert set(filtered) <= set(strict)
        assert len(filtered) >= len(strict) * 0.9

    def test_invalid_threshold(self, small_table):
        with pytest.raises(ConfigurationError):
            similar_pairs_edit(small_table, 0.0)
