"""Tests for the coloring engine (§3.2) and conflict voting (§5.3.1)."""

import numpy as np
import pytest

from repro.graph import Color, ColoringState, PairGraph


@pytest.fixture()
def chain():
    """v0 > v1 > v2 > v3, plus incomparable v4."""
    pairs = [(0, 1), (0, 2), (0, 3), (0, 4), (5, 6)]
    vectors = np.array(
        [[0.9, 0.9], [0.7, 0.7], [0.5, 0.5], [0.3, 0.3], [1.0, 0.0]]
    )
    return PairGraph(pairs, vectors)


class TestBasicColoring:
    def test_initially_uncolored(self, chain):
        state = ColoringState(chain)
        assert not state.is_complete()
        assert len(state.uncolored()) == 5

    def test_green_propagates_to_ancestors(self, chain):
        state = ColoringState(chain)
        state.apply_answer(2, True)
        assert state.color_of(2) == Color.GREEN
        assert state.color_of(0) == Color.GREEN
        assert state.color_of(1) == Color.GREEN
        assert state.color_of(3) == Color.UNCOLORED
        assert state.color_of(4) == Color.UNCOLORED

    def test_red_propagates_to_descendants(self, chain):
        state = ColoringState(chain)
        state.apply_answer(1, False)
        assert state.color_of(1) == Color.RED
        assert state.color_of(2) == Color.RED
        assert state.color_of(3) == Color.RED
        assert state.color_of(0) == Color.UNCOLORED

    def test_no_propagation_when_disabled(self, chain):
        state = ColoringState(chain)
        state.apply_answer(2, True, propagate=False)
        assert state.color_of(2) == Color.GREEN
        assert state.color_of(0) == Color.UNCOLORED

    def test_counting(self, chain):
        state = ColoringState(chain)
        state.apply_answer(2, True)
        assert state.num_asked == 1
        assert state.num_deduced == 2

    def test_complete_detection(self, chain):
        state = ColoringState(chain)
        state.apply_answer(3, True)  # colors 0..3 green
        state.apply_answer(4, False)
        assert state.is_complete()


class TestConflictVoting:
    def test_asked_vertices_are_pinned(self, chain):
        state = ColoringState(chain)
        state.apply_answer(1, False)  # red, descendants red
        state.apply_answer(3, True)  # contradicting green from below
        # 3 is pinned to its own crowd answer.
        assert state.color_of(3) == Color.GREEN
        # 1 keeps its own answer too.
        assert state.color_of(1) == Color.RED

    def test_majority_voting_on_inferred(self, chain):
        state = ColoringState(chain)
        # Two green votes for vertex 0 (from 1 and 2), then one red... red
        # answers vote descendants, so vote green twice via 1 and 2:
        state.apply_answer(2, True)  # 0,1 green votes
        state.apply_answer(1, True)  # 0 another green vote (1 now pinned)
        assert state.color_of(0) == Color.GREEN

    def test_tie_resolves_to_red(self):
        # Diamond: a > m, b > m is impossible for ties on one vertex via
        # green/red; build x > y and z > y; ask x red (y red vote), ask z
        # green -> votes ancestors, not y.  Instead: y's votes come from a
        # red above and a green below.
        pairs = [(0, 1), (2, 3), (4, 5)]
        vectors = np.array([[0.9, 0.9], [0.5, 0.5], [0.1, 0.1]])
        graph = PairGraph(pairs, vectors)
        state = ColoringState(graph)
        state.apply_answer(0, False)  # votes 1, 2 red
        state.apply_answer(2, True)  # votes 1, 0 green -> vertex 1 tied
        assert state.color_of(1) == Color.RED

    def test_majority_flips_inferred_color(self):
        """A 2-1 vote overrides the first inference."""
        # Vertices 0,1,2 all dominate 3.
        vectors = np.array([[0.9, 0.9], [0.8, 0.8], [0.7, 0.7], [0.1, 0.1]])
        graph = PairGraph([(0, 1), (2, 3), (4, 5), (6, 7)], vectors)
        state = ColoringState(graph)
        state.apply_answer(2, False)  # 3 red (1 vote)
        # Green answers vote ancestors; to vote 3 green we need answers on
        # vertices dominated by 3 — none exist, so check the red persists.
        assert state.color_of(3) == Color.RED


class TestBlueAndForce:
    def test_mark_blue_pins_without_inference(self, chain):
        state = ColoringState(chain)
        state.mark_blue(1)
        assert state.color_of(1) == Color.BLUE
        assert state.color_of(2) == Color.UNCOLORED
        assert list(state.blue_vertices()) == [1]
        assert state.num_asked == 1

    def test_blue_counts_as_colored(self, chain):
        state = ColoringState(chain)
        for vertex in range(5):
            state.mark_blue(vertex)
        assert state.is_complete()

    def test_force_color(self, chain):
        state = ColoringState(chain)
        state.force_color(4, Color.GREEN)
        assert state.color_of(4) == Color.GREEN
        assert state.num_asked == 0


class TestLabels:
    def test_pair_labels_cover_colored_only(self, chain):
        state = ColoringState(chain)
        state.apply_answer(2, True)
        labels = state.pair_labels()
        assert labels[(0, 1)] is True  # vertex 0
        assert labels[(0, 3)] is True  # vertex 2 itself
        assert (0, 4) not in labels  # vertex 3 uncolored
        assert (5, 6) not in labels

    def test_validate_against_truth(self, chain):
        state = ColoringState(chain)
        state.apply_answer(2, True)
        truth = {(0, 1): True, (0, 2): True, (0, 3): False}
        assert state.validate_against(truth) == pytest.approx(2 / 3)
