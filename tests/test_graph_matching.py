"""Tests for Hopcroft-Karp and the Dilworth path decomposition (§5.2)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    PairGraph,
    greedy_path_cover,
    hopcroft_karp,
    minimum_path_cover,
    restricted_adjacency,
    vectorized_edges,
)

from conftest import random_vectors


def bipartite_strategy():
    return st.integers(min_value=0, max_value=9).flatmap(
        lambda n: st.lists(
            st.lists(st.integers(min_value=0, max_value=max(0, n - 1)), max_size=n).map(
                lambda xs: sorted(set(xs))
            ),
            min_size=n,
            max_size=n,
        )
    )


def matching_size_networkx(adjacency):
    graph = nx.Graph()
    num_left = len(adjacency)
    graph.add_nodes_from(range(num_left), bipartite=0)
    for u, neighbors in enumerate(adjacency):
        for v in neighbors:
            graph.add_edge(u, num_left + v)
    left = {n for n, d in graph.nodes(data=True) if d.get("bipartite") == 0}
    matching = nx.bipartite.maximum_matching(graph, top_nodes=left)
    return sum(1 for k in matching if k in left)


def dominance_adjacency(vectors):
    n = vectors.shape[0]
    adjacency = [[] for _ in range(n)]
    for parent, child in vectorized_edges(vectors):
        adjacency[parent].append(child)
    return [sorted(children) for children in adjacency]


class TestHopcroftKarp:
    def test_perfect_matching(self):
        adjacency = [[0], [1], [2]]
        match_left, match_right = hopcroft_karp(adjacency, num_right=3)
        assert match_left == [0, 1, 2]
        assert match_right == [0, 1, 2]

    def test_augmenting_path_needed(self):
        # u0 -> {0,1}, u1 -> {0}: greedy u0=0 blocks u1 unless augmented.
        adjacency = [[0, 1], [0]]
        match_left, _ = hopcroft_karp(adjacency, num_right=2)
        assert sorted(match_left) == [0, 1]

    def test_no_edges(self):
        match_left, match_right = hopcroft_karp([[], []], num_right=2)
        assert match_left == [-1, -1]
        assert match_right == [-1, -1]

    @settings(max_examples=50, deadline=None)
    @given(bipartite_strategy())
    def test_maximum_size_matches_networkx(self, adjacency):
        if not adjacency:
            return
        match_left, match_right = hopcroft_karp(adjacency, num_right=len(adjacency))
        size = sum(1 for v in match_left if v != -1)
        assert size == matching_size_networkx(adjacency)
        # Consistency of the two sides.
        for u, v in enumerate(match_left):
            if v != -1:
                assert match_right[v] == u


class TestMinimumPathCover:
    @settings(max_examples=25, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=1, max_value=25),
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=0, max_value=9999),
        ).map(lambda args: random_vectors(args[2], args[0], args[1]))
    )
    def test_cover_properties(self, vectors):
        """Theorem 2: disjoint, complete, and of minimal size |V| - |M|."""
        adjacency = dominance_adjacency(vectors)
        paths = minimum_path_cover(adjacency)
        seen = [v for path in paths for v in path]
        assert sorted(seen) == list(range(len(adjacency)))  # complete+disjoint
        match_left, _ = hopcroft_karp(adjacency, num_right=len(adjacency))
        matched = sum(1 for v in match_left if v != -1)
        assert len(paths) == len(adjacency) - matched  # Fulkerson's identity

    @settings(max_examples=25, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=1, max_value=20),
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=0, max_value=9999),
        ).map(lambda args: random_vectors(args[2], args[0], args[1]))
    )
    def test_paths_follow_dominance(self, vectors):
        """Consecutive path vertices must be ordered (dominating first)."""
        adjacency = dominance_adjacency(vectors)
        edges = {(u, v) for u, children in enumerate(adjacency) for v in children}
        for path in minimum_path_cover(adjacency):
            for a, b in zip(path, path[1:]):
                assert (a, b) in edges

    def test_antichain_gives_singletons(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.49]])
        paths = minimum_path_cover(dominance_adjacency(vectors))
        assert sorted(len(p) for p in paths) == [1, 1, 1]

    def test_chain_gives_one_path(self):
        vectors = np.array([[0.9], [0.5], [0.1]])
        paths = minimum_path_cover(dominance_adjacency(vectors))
        assert len(paths) == 1
        assert paths[0] == [0, 1, 2]


class TestGreedyPathCover:
    @settings(max_examples=20, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=1, max_value=20),
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=0, max_value=9999),
        ).map(lambda args: random_vectors(args[2], args[0], args[1]))
    )
    def test_valid_cover_but_maybe_larger(self, vectors):
        adjacency = dominance_adjacency(vectors)
        greedy = greedy_path_cover(adjacency)
        optimal = minimum_path_cover(adjacency)
        seen = sorted(v for path in greedy for v in path)
        assert seen == list(range(len(adjacency)))
        assert len(greedy) >= len(optimal)


class TestRestrictedAdjacency:
    def test_relabeling(self):
        adjacency = [np.array([1, 2]), np.array([2]), np.array([], dtype=int)]
        active = np.array([True, False, True])
        sub, ids = restricted_adjacency(adjacency, active)
        assert list(ids) == [0, 2]
        assert sub == [[1], []]  # 0 -> 2 becomes 0 -> 1 in compact ids
