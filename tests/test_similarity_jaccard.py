"""Unit tests for Jaccard-family similarities (Eq. 1) and tokenizers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.similarity import (
    bigram_jaccard,
    jaccard,
    normalize,
    qgram_jaccard,
    qgram_tokens,
    token_jaccard,
    word_tokens,
)

TEXT = st.text(alphabet="abc -.", max_size=30)


class TestTokenizers:
    def test_word_tokens_split_on_punctuation(self):
        assert word_tokens("ritz-carlton (atlanta)") == {"ritz", "carlton", "atlanta"}

    def test_word_tokens_lowercase(self):
        assert word_tokens("ABC def") == {"abc", "def"}

    def test_word_tokens_empty(self):
        assert word_tokens("...") == frozenset()

    def test_qgram_short_string(self):
        assert qgram_tokens("a", 2) == {"a"}

    def test_qgram_bigrams(self):
        assert qgram_tokens("abc", 2) == {"ab", "bc"}

    def test_qgram_normalises_whitespace(self):
        assert qgram_tokens("a   b", 2) == qgram_tokens("a b", 2)

    def test_qgram_invalid_q(self):
        with pytest.raises(ValueError):
            qgram_tokens("abc", 0)

    def test_normalize(self):
        assert normalize("  A  B\tC ") == "a b c"


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        # |{a}| / |{a, b, c}|
        assert jaccard({"a", "b"}, {"a", "c"}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard(frozenset(), frozenset()) == 1.0

    def test_one_empty(self):
        assert jaccard(frozenset(), {"a"}) == 0.0

    def test_paper_example_address(self):
        # s_12^2 in Table 2: Jac("181 w. peachtree st.", "181 peachtree dr")
        # = |{181, peachtree}| / |{181, w, peachtree, st, dr}| = 2/5.
        assert token_jaccard("181 w. peachtree st.", "181 peachtree dr") == pytest.approx(0.4)

    @given(TEXT, TEXT)
    def test_range_and_symmetry(self, a, b):
        s = token_jaccard(a, b)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(token_jaccard(b, a))

    @given(TEXT)
    def test_self_similarity(self, a):
        assert token_jaccard(a, a) == 1.0
        assert bigram_jaccard(a, a) == 1.0

    @given(TEXT, TEXT, st.integers(min_value=1, max_value=4))
    def test_qgram_range(self, a, b, q):
        assert 0.0 <= qgram_jaccard(a, b, q) <= 1.0
