"""Validation against the paper's published running example.

These tests pin our algorithms to the numbers printed in the paper: the
partial-order relations quoted in §3.1, the Fig. 3/4 grouping, the Fig. 7
topological layers, the §5 question counts, the Eq. 7 attribute weights of
Appendix C, and the Fig. 18 weighted similarities.
"""

import numpy as np
import pytest

from repro.crowd import PerfectCrowd
from repro.data import (
    PAPER_ATTRIBUTE_WEIGHTS,
    PAPER_SIMILARITIES,
    PAPER_SPLIT_GROUPS,
    PAPER_WEIGHTED_SIMILARITIES,
    paper_pairs,
    paper_table,
    paper_vectors,
)
from repro.data.ground_truth import pair_truth
from repro.data.paper_example import PAPER_GREEN_TRAINING_PAIRS
from repro.graph import (
    GroupedGraph,
    PairGraph,
    greedy_grouping,
    middle_layer,
    minimum_path_cover,
    split_grouping,
    strictly_dominates,
    topological_layers,
    validate_grouping,
)
from repro.selection import (
    MultiPathSelector,
    SinglePathSelector,
    TopoSortSelector,
    attribute_weights,
    weighted_similarities,
)
from repro.similarity import SimilarityConfig, similarity_matrix


@pytest.fixture(scope="module")
def bundle():
    table = paper_table()
    pairs = paper_pairs()
    vectors = paper_vectors()
    truth = pair_truth(table, pairs)
    return table, pairs, vectors, truth


class TestTable1And2:
    def test_eleven_records_six_entities(self, bundle):
        table, _, _, _ = bundle
        assert len(table) == 11
        assert len({record.entity_id for record in table}) == 6

    def test_eighteen_similar_pairs(self, bundle):
        _, pairs, _, _ = bundle
        assert len(pairs) == 18

    def test_quoted_partial_orders(self, bundle):
        """§3.1 quotes: p34 >= p35, p27 > p34, and p27 > p35."""
        _, pairs, vectors, _ = bundle
        index = {pair: row for row, pair in enumerate(pairs)}
        p27, p34, p35 = vectors[index[(1, 6)]], vectors[index[(2, 3)]], vectors[index[(2, 4)]]
        assert np.all(p34 >= p35)
        assert strictly_dominates(p27, p34)
        assert strictly_dominates(p27, p35)

    def test_computed_similarities_track_published(self, bundle):
        """Our similarity functions approximate Table 2 (edit on name and
        flavor, Jaccard on address and city); tokenisation details differ,
        so the check is loose but must preserve ordering structure."""
        table, pairs, _, _ = bundle
        config = SimilarityConfig(
            functions=("edit", "jaccard", "jaccard", "edit"), attribute_threshold=0.2
        )
        computed = similarity_matrix(table, pairs, config)
        published = np.array([PAPER_SIMILARITIES[pair] for pair in pairs])
        # City (Jaccard) and address columns are exact in the paper.
        assert np.allclose(computed[:, 2], published[:, 2], atol=0.02)
        assert np.abs(computed[:, 1] - published[:, 1]).max() <= 0.2
        # Name/flavor edit similarity: same within tokenisation slack.
        assert np.abs(computed[:, 0] - published[:, 0]).max() <= 0.15

    def test_pairs_match_table2_truth(self, bundle):
        """Table 1's stated entities: p12..p23 and p45..p67 are matches."""
        _, _, _, truth = bundle
        matches = {pair for pair, same in truth.items() if same}
        assert matches == {(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (3, 6), (4, 5), (4, 6), (5, 6)}


class TestGroupingExample:
    def test_split_gives_nine_valid_groups(self, bundle):
        _, pairs, vectors, _ = bundle
        groups = split_grouping(vectors, 0.1)
        validate_grouping(vectors, groups, 0.1)
        assert len(groups) == 9

    def test_split_matches_uncontested_paper_groups(self, bundle):
        """Seven of the paper's nine Fig. 3 groups are forced by Algorithm 2;
        the other two depend on an inconsistent split point in Fig. 4 (see
        the note in repro.data.paper_example)."""
        _, pairs, vectors, _ = bundle
        groups = split_grouping(vectors, 0.1)
        named = {frozenset(pairs[i] for i in group) for group in groups}
        forced = [
            g for g in PAPER_SPLIT_GROUPS
            if g not in (
                frozenset({(9, 10), (1, 6)}),
                frozenset({(1, 5), (2, 3), (7, 8), (2, 4)}),
            )
        ]
        assert len(forced) == 7
        for group in forced:
            assert group in named

    def test_greedy_groups_are_valid(self, bundle):
        _, _, vectors, _ = bundle
        groups = greedy_grouping(vectors, 0.1)
        validate_grouping(vectors, groups, 0.1)
        # Greedy never produces more groups than split on this example.
        assert len(groups) <= len(split_grouping(vectors, 0.1))

    def test_greedy_keeps_p67_p45_together(self, bundle):
        """§4.2: p67 and p45 have close similarities and form one group."""
        _, pairs, vectors, _ = bundle
        groups = greedy_grouping(vectors, 0.1)
        named = {frozenset(pairs[i] for i in group) for group in groups}
        assert frozenset({(3, 4), (5, 6)}) in named


class TestTopologyExample:
    @pytest.fixture()
    def grouped(self, bundle):
        _, pairs, vectors, _ = bundle
        base = PairGraph(pairs, vectors)
        return GroupedGraph(base, split_grouping(vectors, 0.1))

    def test_five_layers_like_fig7(self, grouped):
        layers = topological_layers(grouped)
        assert [len(layer) for layer in layers] == [1, 3, 2, 2, 1]

    def test_top_layer_is_the_most_similar_group(self, grouped):
        layers = topological_layers(grouped)
        top = int(layers[0][0])
        assert set(grouped.member_pairs(top)) == {(3, 4), (5, 6)}

    def test_middle_layer_selection(self, grouped):
        layers = topological_layers(grouped)
        assert len(middle_layer(layers)) == 2  # L3 of 5 layers

    def test_three_disjoint_paths(self, grouped):
        """Fig. 5: B = 3 minimal disjoint paths on the grouped example."""
        adjacency = [list(children) for children in grouped.adjacency()]
        paths = minimum_path_cover(adjacency)
        assert len(paths) == 3
        covered = sorted(v for path in paths for v in path)
        assert covered == list(range(len(grouped)))


class TestQuestionCountExample:
    @pytest.fixture()
    def setup(self, bundle):
        table, pairs, vectors, truth = bundle
        base = PairGraph(pairs, vectors)
        grouped = GroupedGraph(base, split_grouping(vectors, 0.1))
        return grouped, PerfectCrowd(truth)

    def test_power_asks_four_questions_three_iterations(self, setup):
        """§5.3.2: 'This method asks 4 vertices and has 3 iterations.'"""
        grouped, crowd = setup
        result = TopoSortSelector().run(grouped, crowd.session())
        assert result.questions == 4
        assert result.iterations == 3

    def test_multipath_runs_three_iterations(self, setup):
        """Appendix B: 'This method asks 5 vertices and involves 3 iterations.'"""
        grouped, crowd = setup
        result = MultiPathSelector().run(grouped, crowd.session())
        assert result.iterations == 3
        assert result.questions == 5

    def test_single_path_is_serial(self, setup):
        grouped, crowd = setup
        result = SinglePathSelector().run(grouped, crowd.session())
        assert result.iterations == result.questions

    def test_all_selectors_perfectly_color_with_oracle(self, setup, bundle):
        _, _, _, truth = bundle
        grouped, crowd = setup
        for selector in (TopoSortSelector(), MultiPathSelector(), SinglePathSelector()):
            result = selector.run(grouped, crowd.session())
            assert result.labels == truth


class TestErrorTolerantExample:
    def test_attribute_weights_match_appendix_c(self, bundle):
        """Eq. 7 over P^g = {p13, p67, p45, p23, p46, p56, p47, p57}
        gives w = (0.32, 0.28, 0.21, 0.19)."""
        _, pairs, vectors, _ = bundle
        index = {pair: row for row, pair in enumerate(pairs)}
        green = vectors[[index[pair] for pair in PAPER_GREEN_TRAINING_PAIRS]]
        weights = attribute_weights(green, num_attributes=4)
        assert np.allclose(weights, PAPER_ATTRIBUTE_WEIGHTS, atol=0.005)

    def test_weighted_similarities_match_fig18(self, bundle):
        _, pairs, vectors, _ = bundle
        index = {pair: row for row, pair in enumerate(pairs)}
        green = vectors[[index[pair] for pair in PAPER_GREEN_TRAINING_PAIRS]]
        weights = attribute_weights(green, num_attributes=4)
        s_hat = weighted_similarities(vectors, weights)
        # Tolerance 0.02: the figure's own rounding is loose (e.g. its 0.60
        # for p23 computes to 0.586 under its own published weights).
        for pair, published in PAPER_WEIGHTED_SIMILARITIES.items():
            assert s_hat[index[pair]] == pytest.approx(published, abs=0.02), pair
