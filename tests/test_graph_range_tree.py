"""Tests for the 2-D range tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import RangeTree2D

POINTS = st.lists(
    st.tuples(
        st.sampled_from([0.0, 0.2, 0.4, 0.6, 0.8, 1.0]),
        st.sampled_from([0.0, 0.2, 0.4, 0.6, 0.8, 1.0]),
    ),
    min_size=0,
    max_size=60,
)
QUERY = st.tuples(
    st.floats(min_value=-0.1, max_value=1.1),
    st.floats(min_value=-0.1, max_value=1.1),
)


def brute(points, qx, qy):
    return sorted(
        i for i, (x, y) in enumerate(points) if x <= qx and y <= qy
    )


class TestRangeTree:
    @settings(max_examples=60, deadline=None)
    @given(POINTS, QUERY)
    def test_matches_linear_scan(self, points, query):
        tree = RangeTree2D(np.array(points).reshape(-1, 2))
        qx, qy = query
        assert sorted(tree.query_leq(qx, qy)) == brute(points, qx, qy)

    def test_empty_tree(self):
        tree = RangeTree2D(np.empty((0, 2)))
        assert tree.query_leq(1.0, 1.0) == []
        assert len(tree) == 0

    def test_duplicate_points(self):
        points = np.array([[0.5, 0.5]] * 4)
        tree = RangeTree2D(points)
        assert sorted(tree.query_leq(0.5, 0.5)) == [0, 1, 2, 3]
        assert tree.query_leq(0.4, 0.5) == []

    def test_boundary_inclusive(self):
        tree = RangeTree2D(np.array([[0.3, 0.7]]))
        assert tree.query_leq(0.3, 0.7) == [0]
        assert tree.query_leq(0.3, 0.69) == []
        assert tree.query_leq(0.29, 0.7) == []

    def test_shape_validation(self):
        with pytest.raises(GraphError):
            RangeTree2D(np.array([1.0, 2.0, 3.0]))
        with pytest.raises(GraphError):
            RangeTree2D(np.array([[1.0, 2.0, 3.0]]))

    def test_large_uniform_grid(self):
        xs, ys = np.meshgrid(np.linspace(0, 1, 12), np.linspace(0, 1, 12))
        points = np.column_stack([xs.ravel(), ys.ravel()])
        tree = RangeTree2D(points)
        got = tree.query_leq(0.5, 0.5)
        expected = brute([tuple(p) for p in points], 0.5, 0.5)
        assert sorted(got) == expected
