"""Property tests for the append-only answer journal (WAL).

Two contracts matter for crash resume:

* **Round trip** — any sequence of records appended through
  :class:`Journal` reads back verbatim, and :func:`replay_state` is a pure
  left fold of it (a prefix of records yields the state the run had at
  that point).
* **Torn tail** — a crash can cut the last line mid-write; replay must
  recover every intact record, report the truncation, and (with
  ``repair=True``) truncate the file so subsequent appends stay valid.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd.aggregate import VoteOutcome
from repro.engine import (
    JOURNAL_VERSION,
    Journal,
    load_journal,
    read_records,
    replay_state,
)
from repro.engine.journal import decode_outcome, encode_outcome
from repro.exceptions import JournalError

# ---------------------------------------------------------------------- #
# Strategies: random-but-valid journal record streams
# ---------------------------------------------------------------------- #

pairs = st.tuples(st.integers(0, 50), st.integers(51, 99))
clocks = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def outcome_records():
    return st.builds(
        lambda pair, answer, confidence, z, clock: {
            "type": "answer",
            "pair": list(pair),
            "answer": answer,
            "confidence": confidence,
            "votes": [answer] * z,
            "clock": clock,
        },
        pairs,
        st.booleans(),
        st.floats(min_value=0.5, max_value=1.0, allow_nan=False),
        st.integers(1, 7),
        clocks,
    )


def lifecycle_records():
    return st.builds(
        lambda kind, pair, unit, attempt, clock: {
            "type": kind,
            "pair": list(pair),
            "unit": unit,
            "attempt": attempt,
            "clock": clock,
        },
        st.sampled_from(["posted", "assigned", "answered_unit", "expired", "abandoned"]),
        pairs,
        st.integers(0, 9),
        st.integers(1, 6),
        clocks,
    )


def machine_records():
    return st.builds(
        lambda pair, answer, clock: {
            "type": "machine",
            "pair": list(pair),
            "answer": answer,
            "clock": clock,
        },
        pairs,
        st.booleans(),
        clocks,
    )


def round_records():
    return st.builds(
        lambda n, size, clock: {"type": "round", "round": n, "size": size, "clock": clock},
        st.integers(1, 100),
        st.integers(1, 500),
        clocks,
    )


record_streams = st.lists(
    st.one_of(outcome_records(), lifecycle_records(), machine_records(), round_records()),
    max_size=40,
)


def header_record():
    return {
        "type": "header",
        "version": JOURNAL_VERSION,
        "seed": 0,
        "profile": "flaky",
        "assignments": 5,
        "pairs_per_hit": 10,
        "cents_per_hit": 10,
    }


# ---------------------------------------------------------------------- #
# Round trip
# ---------------------------------------------------------------------- #


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(records=record_streams)
    def test_append_then_read_is_identity(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("journal") / "run.jsonl"
        with Journal(path) as journal:
            journal.append(header_record())
            for record in records:
                journal.append(record)
        read, truncated = read_records(path)
        assert not truncated
        assert read[0]["type"] == "header"
        assert read[1:] == json.loads(json.dumps(records))  # float-safe compare

    @settings(max_examples=60, deadline=None)
    @given(records=record_streams)
    def test_replay_is_a_pure_left_fold(self, records):
        full = [header_record()] + records
        state = replay_state(full)
        # Prefix property: replaying a prefix gives the state at that point,
        # and extending the prefix only ever refines it.
        for cut in range(len(full) + 1):
            prefix_state = replay_state(full[:cut])
            assert prefix_state.rounds <= state.rounds
            assert prefix_state.last_clock <= state.last_clock
            assert set(prefix_state.answers) <= set(state.answers)
        # Determinism: same records, same state.
        again = replay_state(full)
        assert again.answers == state.answers
        assert again.machine_answers == state.machine_answers
        assert (again.rounds, again.reposts, again.expired, again.abandoned) == (
            state.rounds, state.reposts, state.expired, state.abandoned
        )

    @settings(max_examples=40, deadline=None)
    @given(
        answer=st.booleans(),
        confidence=st.floats(min_value=0.5, max_value=1.0, allow_nan=False),
        z=st.integers(1, 9),
    )
    def test_outcome_codec_round_trip(self, answer, confidence, z):
        outcome = VoteOutcome(answer=answer, confidence=confidence, votes=(answer,) * z)
        decoded = decode_outcome(json.loads(json.dumps(encode_outcome(outcome))))
        assert decoded == outcome

    def test_counters_fold_correctly(self):
        records = [
            header_record(),
            {"type": "round", "round": 1, "size": 3, "clock": 0.0},
            {"type": "posted", "pair": [0, 1], "unit": 0, "attempt": 1, "clock": 0.0},
            {"type": "posted", "pair": [0, 1], "unit": 0, "attempt": 2, "clock": 60.0},
            {"type": "expired", "pair": [0, 1], "unit": 0, "attempt": 1, "clock": 600.0},
            {"type": "abandoned", "pair": [2, 3], "unit": 1, "attempt": 1, "clock": 30.0},
            {"type": "answer", "pair": [1, 0], "answer": True, "confidence": 0.9,
             "votes": [True, True, False], "clock": 700.0},
            {"type": "machine", "pair": [4, 5], "answer": False, "clock": 700.0},
            {"type": "final", "questions": 1, "cost_cents": 50,
             "repost_cents": 1.0, "clock": 700.0},
        ]
        state = replay_state(records)
        assert state.rounds == 1
        assert state.reposts == 1  # only the attempt-2 posted record
        assert state.expired == 1 and state.abandoned == 1
        assert state.last_clock == 700.0
        assert state.complete
        # Pairs canonicalise: [1, 0] folds to (0, 1).
        assert state.answers[(0, 1)].answer is True
        assert state.machine_answers[(4, 5)] is False

    def test_wrong_version_rejected(self):
        bad = dict(header_record(), version=JOURNAL_VERSION + 1)
        with pytest.raises(JournalError):
            replay_state([bad])

    def test_record_without_type_rejected_on_append(self, tmp_path):
        journal = Journal(tmp_path / "run.jsonl")
        with pytest.raises(JournalError):
            journal.append({"pair": [0, 1]})


# ---------------------------------------------------------------------- #
# Torn tails (mid-write crash)
# ---------------------------------------------------------------------- #


class TestTornTail:
    def _write_journal(self, path, records):
        with Journal(path) as journal:
            for record in records:
                journal.append(record)

    @settings(max_examples=60, deadline=None)
    @given(records=record_streams, data=st.data())
    def test_any_byte_truncation_recovers_a_prefix(self, tmp_path_factory, records, data):
        path = tmp_path_factory.mktemp("journal") / "run.jsonl"
        self._write_journal(path, [header_record()] + records)
        raw = path.read_bytes()
        cut = data.draw(st.integers(0, len(raw)), label="cut")
        path.write_bytes(raw[:cut])
        recovered, truncated = read_records(path)
        # Whatever the cut point, we recover an exact record prefix...
        full = [header_record()] + json.loads(json.dumps(records))
        assert recovered == full[: len(recovered)]
        # ...losing at most the single record the cut landed inside.
        assert len(recovered) == raw[:cut].count(b"\n")
        # "Torn" means a dangling partial line; a cut landing exactly on a
        # record boundary (or an empty file) reads back clean.
        assert truncated == bool(raw[:cut] and not raw[:cut].endswith(b"\n"))

    def test_mid_line_cut_reports_truncation_and_repairs(self, tmp_path):
        path = tmp_path / "run.jsonl"
        records = [header_record()] + [
            {"type": "round", "round": i, "size": 5, "clock": float(i)}
            for i in range(1, 6)
        ]
        self._write_journal(path, records)
        raw = path.read_bytes()
        # Cut inside the last line.
        path.write_bytes(raw[: len(raw) - 4])
        recovered, truncated = read_records(path, repair=False)
        assert truncated
        assert len(recovered) == len(records) - 1
        # File still torn: a naive append would corrupt it.
        assert not path.read_bytes().endswith(b"\n")
        # Repair truncates back to the last intact record...
        recovered2, truncated2 = read_records(path, repair=True)
        assert truncated2 and recovered2 == recovered
        assert path.read_bytes().endswith(b"\n")
        # ...so appending afterwards yields a fully valid journal again.
        with Journal(path) as journal:
            journal.append({"type": "final", "questions": 1, "clock": 9.0})
        final, still_truncated = read_records(path)
        assert not still_truncated
        assert final[-1]["type"] == "final"

    def test_garbage_line_stops_replay(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write_journal(path, [header_record()])
        with path.open("ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b'{"type":"round","round":1,"size":2,"clock":1.0}\n')
        recovered, truncated = read_records(path)
        assert truncated
        assert len(recovered) == 1  # everything after the bad line is lost

    def test_non_dict_json_line_is_torn(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write_journal(path, [header_record()])
        with path.open("ab") as handle:
            handle.write(b"[1,2,3]\n")
        _, truncated = read_records(path)
        assert truncated

    def test_missing_file_is_empty_not_error(self, tmp_path):
        records, truncated = read_records(tmp_path / "absent.jsonl")
        assert records == [] and not truncated
        state = load_journal(tmp_path / "absent.jsonl")
        assert not state.complete and state.answers == {}

    def test_load_journal_resumes_answers(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write_journal(
            path,
            [
                header_record(),
                {"type": "answer", "pair": [3, 9], "answer": True,
                 "confidence": 0.8, "votes": [True, True, True, False, True],
                 "clock": 10.0},
            ],
        )
        state = load_journal(path)
        assert state.answers[(3, 9)] == VoteOutcome(
            answer=True, confidence=0.8, votes=(True, True, True, False, True)
        )
        assert not state.complete
