"""Smoke tests for the figure harnesses, on a stubbed tiny workload.

The real sweeps run in `benchmarks/`; here every harness is exercised
against a miniature workload so regressions in the plumbing (argument
wiring, row shapes, file output) surface in seconds.
"""

import numpy as np
import pytest

import repro.experiments.ablations as ablations
import repro.experiments.figures as figures
from repro.experiments.runner import Workload


@pytest.fixture()
def tiny_workload(small_bundle):
    table, pairs, vectors, truth = small_bundle
    from repro.data.ground_truth import true_match_pairs

    return Workload(
        name="restaurant",  # harnesses key datasets by name
        table=table,
        pairs=pairs,
        vectors=vectors,
        scores=vectors.mean(axis=1),
        truth=truth,
        gold=true_match_pairs(table),
        pruning_threshold=0.2,
    )


@pytest.fixture()
def stub_prepare(tiny_workload, monkeypatch):
    def fake_prepare(name, similarity="bigram", max_pairs=None):
        return tiny_workload

    monkeypatch.setattr(figures, "prepare", fake_prepare)
    monkeypatch.setattr(ablations, "prepare", fake_prepare)
    return fake_prepare


class TestTableHarnesses:
    def test_table2(self, capsys):
        rows = figures.table2_similarity()
        assert len(rows) == 18
        assert "Table 2" in capsys.readouterr().out

    def test_table3_stubbed(self, stub_prepare, capsys):
        rows = figures.table3_datasets(datasets=("restaurant",))
        assert rows[0][1] == 60  # the tiny table's record count
        assert "Table 3" in capsys.readouterr().out


class TestFigureHarnesses:
    def test_accuracy_sweep(self, stub_prepare):
        rows = figures.accuracy_sweep(
            mode="simulation", datasets=("restaurant",), bands=("90",), num_seeds=1
        )
        assert {r.method for r in rows} == {"power", "power+", "trans", "acd", "gcer"}
        assert all(0 <= r.f_measure <= 1 for r in rows)

    def test_similarity_function_sweep(self, stub_prepare):
        rows = figures.similarity_function_sweep(
            functions=("bigram",), datasets=("restaurant",), num_seeds=1
        )
        assert len(rows) == 5

    def test_construction_benchmark(self, stub_prepare):
        rows = figures.construction_benchmark(dataset="restaurant", sizes=(40,))
        assert len(rows) == 1
        _, size, edges, brute, quicksort, index = rows[0]
        assert size == 40
        assert min(brute, quicksort, index) > 0

    def test_grouping_benchmark(self, stub_prepare):
        rows = figures.grouping_benchmark(datasets=("restaurant",), epsilons=(0.1,))
        assert rows[0][2] > 0  # split produced groups

    def test_group_vs_nongroup(self, stub_prepare):
        rows = figures.group_vs_nongroup(epsilons=(0.1,), max_pairs=100)
        labels = [row[1] for row in rows]
        assert labels[0] == "non-group"
        assert "split" in labels

    def test_serial_selection(self, stub_prepare):
        rows = figures.serial_selection(sizes=(50,))
        assert {row[2] for row in rows} == {"random", "single-path"}

    def test_parallel_selection(self, stub_prepare):
        rows = figures.parallel_selection(datasets=("restaurant",))
        assert {row[1] for row in rows} == {"single-path", "multi-path", "power"}

    def test_error_tolerant_sweep(self, stub_prepare):
        rows = figures.error_tolerant_sweep(
            datasets=("restaurant",), epsilons=(0.1,), num_seeds=1
        )
        assert {row[2] for row in rows} == {"power", "power+"}

    def test_attribute_sweep_needs_real_cora(self):
        # Uses Table.project on real Cora; just verify a short sweep runs.
        rows = figures.attribute_sweep(counts=(2,))
        assert rows[0][0] == 2


class TestAblationHarnesses:
    def test_confidence_sweep(self, stub_prepare):
        rows = ablations.confidence_sweep(thresholds=(0.8,), num_seeds=1)
        assert rows[0][1] == 0.8

    def test_histogram_sweep(self, stub_prepare):
        rows = ablations.histogram_sweep(
            bins=(5,), binnings=("equi-depth",), num_seeds=1
        )
        assert len(rows) == 1

    def test_path_cover_compare(self, stub_prepare):
        rows = ablations.path_cover_compare()
        assert {row[1] for row in rows} == {"matching", "greedy"}

    def test_topo_layer_sweep(self, stub_prepare):
        rows = ablations.topo_layer_sweep(positions=(0.5,))
        assert rows[0][1] == 0.5

    def test_aggregation_compare(self, stub_prepare):
        rows = ablations.aggregation_compare(num_seeds=1)
        assert {row[1] for row in rows} == {"majority", "weighted", "quality-aware"}

    def test_budget_curve(self, stub_prepare):
        rows = ablations.budget_curve(budgets=(0, None))
        assert rows[0][2] == 0  # zero budget asks nothing

    def test_index_dimensionality(self, stub_prepare):
        rows = ablations.index_dimensionality(size=50)
        assert rows[0][4] == rows[1][4]  # same edge count
