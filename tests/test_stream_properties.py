"""Property tests for the streaming resolution service.

Three families of invariants, each driven by hypothesis:

* **arrival-order invariance** — under a perfect crowd on monotone truth
  (the regime where inference provably recovers truth exactly), the final
  entity partition does not depend on the order records arrive in;
* **re-chunking invariance** — nor on how the stream is cut into batches:
  every chunking decides the same pair universe with the same labels as
  the one-shot resolver;
* **kill-resume equivalence** — checkpointing after every batch, killing
  at a random point (torn manifest tail included), restoring, and
  finishing produces a run bit-identical to the uninterrupted one —
  labels, crowd transcripts, billing totals, and final ``state_sha``.

The first two families key truth by record *content* (the similarity
vector of a pair is a function of the two records' values, so monotone
truth is too), which is what makes cross-arrangement comparison sound even
when the table holds duplicate rows.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PowerConfig
from repro.core.resolver import PowerResolver
from repro.crowd import PerfectCrowd
from repro.stream import MANIFEST_NAME, StreamingResolver
from repro.verify.oracles import _pair_truth_from_vertices, monotone_truth

#: Ungrouped graphs: the exactness theorem (perfect crowd + monotone truth
#: => labels == truth) holds per-vertex only without epsilon-grouping.
EXACT_CONFIG = PowerConfig(seed=0, epsilon=None)


@pytest.fixture(scope="module")
def stream_rows(small_table):
    """A 24-record slice: non-trivial partial orders, fast selector runs."""
    records = small_table.records[:24]
    return (
        small_table.attributes,
        [record.values for record in records],
        [record.entity_id for record in records],
    )


def _content_key(rows, pair):
    a, b = pair
    return frozenset((rows[a], rows[b])) if rows[a] != rows[b] else frozenset((rows[a],))


def _content_truth(attributes, rows):
    """Monotone truth keyed by unordered record *content* pairs.

    Well-defined even with duplicate rows: a pair's similarity vector — and
    hence its monotone-truth label — depends only on the two value tuples.
    """
    from repro.data.table import Table

    table = Table(name="t", attributes=tuple(attributes))
    for row in rows:
        table.append(row)
    resolver = PowerResolver(EXACT_CONFIG)
    pairs = resolver.candidate_pairs(table)
    vectors = resolver.similarity_vectors(table, pairs)
    truth = _pair_truth_from_vertices(pairs, monotone_truth(vectors))
    return {_content_key(rows, pair): value for pair, value in truth.items()}


def _stream_partition(attributes, rows, chunk_sizes, content_truth):
    """Stream *rows* in the given chunking; return (partition, label map).

    The partition maps cluster members back to row *content* multisets so
    runs over different arrival orders are comparable.  Truth for the
    perfect crowd is looked up by content key — a KeyError here would mean
    the stream decided a pair outside the one-shot universe, which is
    itself a bug worth failing loudly on.
    """
    from repro.data.table import Table

    table = Table(name="t", attributes=tuple(attributes))
    for row in rows:
        table.append(row)
    resolver = PowerResolver(EXACT_CONFIG)
    pairs = resolver.candidate_pairs(table)
    truth = {
        pair: content_truth[_content_key(rows, pair)] for pair in pairs
    }
    stream = StreamingResolver(
        attributes,
        config=EXACT_CONFIG,
        name="t",
        crowd=PerfectCrowd(truth, assignments=EXACT_CONFIG.assignments),
    )
    start = 0
    for size in chunk_sizes:
        stream.add_batch(rows[start : start + size])
        start += size
    assert start == len(rows)
    partition = sorted(
        sorted(list(rows[member]) for member in cluster)
        for cluster in stream.clusters()
    )
    labels = {
        _content_key(rows, pair): value for pair, value in stream.labels.items()
    }
    return partition, labels


def _chunkings(n):
    """Strategy: a list of positive chunk sizes summing to *n*."""
    return (
        st.lists(st.integers(min_value=1, max_value=max(1, n // 2)), min_size=1)
        .map(lambda sizes: _clip(sizes, n))
        .filter(lambda sizes: sum(sizes) == n)
    )


def _clip(sizes, n):
    out, total = [], 0
    for size in sizes:
        if total + size >= n:
            out.append(n - total)
            return out
        out.append(size)
        total += size
    out.append(n - total)
    return out


class TestOrderAndChunkingInvariance:
    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_rechunking_matches_one_shot(self, stream_rows, data):
        """Any chunking decides the one-shot universe with identical labels."""
        attributes, rows, _ = stream_rows
        rows = [tuple(row) for row in rows]
        content_truth = _content_truth(attributes, rows)
        one_shot_partition, one_shot_labels = _stream_partition(
            attributes, rows, [len(rows)], content_truth
        )
        sizes = data.draw(_chunkings(len(rows)))
        partition, labels = _stream_partition(
            attributes, rows, sizes, content_truth
        )
        assert labels == one_shot_labels
        assert partition == one_shot_partition

    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_arrival_order_is_irrelevant(self, stream_rows, data):
        """Permuting arrivals never changes the final entity partition."""
        attributes, rows, _ = stream_rows
        rows = [tuple(row) for row in rows]
        content_truth = _content_truth(attributes, rows)
        baseline, _ = _stream_partition(
            attributes, rows, _clip([5] * 5, len(rows)), content_truth
        )
        order = data.draw(st.permutations(range(len(rows))))
        shuffled = [rows[index] for index in order]
        sizes = data.draw(_chunkings(len(rows)))
        partition, _ = _stream_partition(
            attributes, shuffled, sizes, content_truth
        )
        assert partition == baseline


class TestKillResume:
    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_restore_continue_equals_uninterrupted(self, stream_rows, data):
        """Kill after a random checkpoint; the resumed run is bit-identical."""
        attributes, rows, entity_ids = stream_rows
        batches = data.draw(st.integers(min_value=2, max_value=4))
        kill_after = data.draw(st.integers(min_value=1, max_value=batches - 1))
        tear_tail = data.draw(st.booleans())
        size = -(-len(rows) // batches)
        chunks = [
            (rows[start : start + size], entity_ids[start : start + size])
            for start in range(0, len(rows), size)
        ]

        def build(checkpoint_dir):
            return StreamingResolver(
                attributes,
                config=PowerConfig(seed=3),
                name="t",
                checkpoint_dir=checkpoint_dir,
            )

        with tempfile.TemporaryDirectory() as root:
            straight = build(Path(root) / "straight")
            for chunk_rows, chunk_ids in chunks:
                straight.add_batch(chunk_rows, entity_ids=chunk_ids)
                straight_record = straight.checkpoint()

            resumed_dir = Path(root) / "resumed"
            victim = build(resumed_dir)
            for chunk_rows, chunk_ids in chunks[:kill_after]:
                victim.add_batch(chunk_rows, entity_ids=chunk_ids)
                victim.checkpoint()
            if tear_tail:
                with open(resumed_dir / MANIFEST_NAME, "ab") as manifest:
                    manifest.write(b'{"type": "checkpoint", "trunc')
            del victim

            resumed = StreamingResolver.restore(resumed_dir)
            assert resumed.batches == kill_after
            paid_before = resumed.asked_pairs
            for chunk_rows, chunk_ids in chunks[kill_after:]:
                report = resumed.add_batch(chunk_rows, entity_ids=chunk_ids)
                assert not (set(report["asked_pairs"]) & paid_before)
                resumed_record = resumed.checkpoint()

            assert resumed.labels == straight.labels
            assert resumed.transcripts == straight.transcripts

            def stripped(report):
                # Wall-clock timings are the only legitimately
                # nondeterministic report fields.
                return {
                    k: v
                    for k, v in report.items()
                    if k not in ("ingest_seconds", "index_seconds")
                }

            assert [stripped(r) for r in resumed.reports] == [
                stripped(r) for r in straight.reports
            ]
            assert resumed.total_questions == straight.total_questions
            assert resumed.total_iterations == straight.total_iterations
            assert resumed.cost_cents == straight.cost_cents
            assert resumed.clusters() == straight.clusters()
            assert resumed_record["state_sha"] == straight_record["state_sha"]


@pytest.mark.slow
class TestHeavySweeps:
    """The same laws at larger scale and with more examples."""

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_rechunking_matches_one_shot_full_table(self, small_table, data):
        attributes = small_table.attributes
        rows = [tuple(record.values) for record in small_table]
        content_truth = _content_truth(attributes, rows)
        one_shot = _stream_partition(
            attributes, rows, [len(rows)], content_truth
        )
        sizes = data.draw(_chunkings(len(rows)))
        assert (
            _stream_partition(attributes, rows, sizes, content_truth)
            == one_shot
        )

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_order_invariance_full_table(self, small_table, data):
        attributes = small_table.attributes
        rows = [tuple(record.values) for record in small_table]
        content_truth = _content_truth(attributes, rows)
        baseline, _ = _stream_partition(
            attributes, rows, [len(rows)], content_truth
        )
        order = data.draw(st.permutations(range(len(rows))))
        shuffled = [rows[index] for index in order]
        sizes = data.draw(_chunkings(len(rows)))
        partition, _ = _stream_partition(
            attributes, shuffled, sizes, content_truth
        )
        assert partition == baseline
