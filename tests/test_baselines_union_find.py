"""Tests for union-find and constrained clusters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ConstrainedClusters, UnionFind
from repro.exceptions import DataError


class TestUnionFind:
    def test_initially_disjoint(self):
        sets = UnionFind(3)
        assert not sets.connected(0, 1)

    def test_union_connects(self):
        sets = UnionFind(4)
        sets.union(0, 1)
        sets.union(1, 2)
        assert sets.connected(0, 2)
        assert not sets.connected(0, 3)

    def test_clusters(self):
        sets = UnionFind(4)
        sets.union(0, 2)
        clusters = sets.clusters()
        assert sorted(map(sorted, clusters.values())) == [[0, 2], [1], [3]]

    def test_negative_size_rejected(self):
        with pytest.raises(DataError):
            UnionFind(-1)

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=30))
    def test_matches_naive_connectivity(self, unions):
        sets = UnionFind(15)
        components = [{i} for i in range(15)]

        def component_of(x):
            for component in components:
                if x in component:
                    return component
            raise AssertionError

        for a, b in unions:
            sets.union(a, b)
            ca, cb = component_of(a), component_of(b)
            if ca is not cb:
                ca |= cb
                components.remove(cb)
        for a in range(15):
            for b in range(15):
                assert sets.connected(a, b) == (component_of(a) is component_of(b))


class TestConstrainedClusters:
    def test_yes_merges(self):
        state = ConstrainedClusters(3)
        state.record_yes(0, 1)
        assert state.same(0, 1)
        assert state.inferable((0, 1))

    def test_no_constrains(self):
        state = ConstrainedClusters(3)
        state.record_no(0, 1)
        assert state.different(0, 1)
        assert not state.same(0, 1)

    def test_transitive_negative(self):
        """0=1 and 1!=2 implies 0!=2."""
        state = ConstrainedClusters(3)
        state.record_no(1, 2)
        state.record_yes(0, 1)
        assert state.different(0, 2)

    def test_constraints_survive_merges_both_sides(self):
        state = ConstrainedClusters(5)
        state.record_no(0, 3)
        state.record_yes(0, 1)
        state.record_yes(3, 4)
        assert state.different(1, 4)

    def test_contradicting_no_after_yes_ignored(self):
        state = ConstrainedClusters(2)
        state.record_yes(0, 1)
        state.record_no(0, 1)  # contradicts; positives win
        assert state.same(0, 1)

    def test_label_is_cluster_membership(self):
        state = ConstrainedClusters(4)
        state.record_yes(0, 1)
        assert state.label((0, 1)) is True
        assert state.label((2, 3)) is False

    def test_uninformed_pair_not_inferable(self):
        state = ConstrainedClusters(4)
        state.record_yes(0, 1)
        assert not state.inferable((2, 3))
