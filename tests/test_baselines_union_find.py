"""Tests for union-find and constrained clusters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ConstrainedClusters, UnionFind
from repro.exceptions import DataError


class TestUnionFind:
    def test_initially_disjoint(self):
        sets = UnionFind(3)
        assert not sets.connected(0, 1)

    def test_union_connects(self):
        sets = UnionFind(4)
        sets.union(0, 1)
        sets.union(1, 2)
        assert sets.connected(0, 2)
        assert not sets.connected(0, 3)

    def test_clusters(self):
        sets = UnionFind(4)
        sets.union(0, 2)
        clusters = sets.clusters()
        assert sorted(map(sorted, clusters.values())) == [[0, 2], [1], [3]]

    def test_negative_size_rejected(self):
        with pytest.raises(DataError):
            UnionFind(-1)

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=30))
    def test_matches_naive_connectivity(self, unions):
        sets = UnionFind(15)
        components = [{i} for i in range(15)]

        def component_of(x):
            for component in components:
                if x in component:
                    return component
            raise AssertionError

        for a, b in unions:
            sets.union(a, b)
            ca, cb = component_of(a), component_of(b)
            if ca is not cb:
                ca |= cb
                components.remove(cb)
        for a in range(15):
            for b in range(15):
                assert sets.connected(a, b) == (component_of(a) is component_of(b))


class TestConstrainedClusters:
    def test_yes_merges(self):
        state = ConstrainedClusters(3)
        state.record_yes(0, 1)
        assert state.same(0, 1)
        assert state.inferable((0, 1))

    def test_no_constrains(self):
        state = ConstrainedClusters(3)
        state.record_no(0, 1)
        assert state.different(0, 1)
        assert not state.same(0, 1)

    def test_transitive_negative(self):
        """0=1 and 1!=2 implies 0!=2."""
        state = ConstrainedClusters(3)
        state.record_no(1, 2)
        state.record_yes(0, 1)
        assert state.different(0, 2)

    def test_constraints_survive_merges_both_sides(self):
        state = ConstrainedClusters(5)
        state.record_no(0, 3)
        state.record_yes(0, 1)
        state.record_yes(3, 4)
        assert state.different(1, 4)

    def test_contradicting_no_after_yes_ignored(self):
        state = ConstrainedClusters(2)
        state.record_yes(0, 1)
        state.record_no(0, 1)  # contradicts; positives win
        assert state.same(0, 1)

    def test_label_is_cluster_membership(self):
        state = ConstrainedClusters(4)
        state.record_yes(0, 1)
        assert state.label((0, 1)) is True
        assert state.label((2, 3)) is False

    def test_uninformed_pair_not_inferable(self):
        state = ConstrainedClusters(4)
        state.record_yes(0, 1)
        assert not state.inferable((2, 3))


MERGES = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=30
)


class TestUnionFindProperties:
    """Hypothesis laws for the disjoint-set structure."""

    @settings(max_examples=60)
    @given(MERGES)
    def test_union_is_idempotent(self, merges):
        """Replaying every union a second time changes no partition."""
        once, twice = UnionFind(12), UnionFind(12)
        for a, b in merges:
            once.union(a, b)
            twice.union(a, b)
            twice.union(a, b)
        snapshot = lambda uf: sorted(map(tuple, uf.clusters().values()))  # noqa: E731
        assert snapshot(once) == snapshot(twice)

    @settings(max_examples=60)
    @given(MERGES)
    def test_path_compression_equivalence(self, merges):
        """Compressed find agrees with a compression-free root walk."""
        sets = UnionFind(12)
        for a, b in merges:
            sets.union(a, b)

        def slow_root(item: int) -> int:
            parent = sets._parent[item]
            while parent != sets._parent[parent]:
                parent = sets._parent[parent]
            return parent

        for item in range(12):
            expected = slow_root(item)
            assert sets.find(item) == expected
            # find() compressed the path; the root must be unchanged and
            # every later find must keep returning it.
            assert sets.find(item) == expected
            assert sets._parent[item] == expected

    @settings(max_examples=60)
    @given(MERGES)
    def test_connectivity_matches_bfs(self, merges):
        """connected() agrees with reachability over the merge edges."""
        sets = UnionFind(12)
        neighbors = {v: set() for v in range(12)}
        for a, b in merges:
            sets.union(a, b)
            neighbors[a].add(b)
            neighbors[b].add(a)
        for source in range(12):
            seen = {source}
            frontier = [source]
            while frontier:
                vertex = frontier.pop()
                for other in neighbors[vertex]:
                    if other not in seen:
                        seen.add(other)
                        frontier.append(other)
            for other in range(12):
                assert sets.connected(source, other) == (other in seen)

    @settings(max_examples=60)
    @given(MERGES)
    def test_union_returns_surviving_root(self, merges):
        sets = UnionFind(12)
        for a, b in merges:
            root = sets.union(a, b)
            assert sets.find(a) == sets.find(b) == root

    @settings(max_examples=40)
    @given(MERGES)
    def test_clusters_partition_the_universe(self, merges):
        sets = UnionFind(12)
        for a, b in merges:
            sets.union(a, b)
        members = [item for cluster in sets.clusters().values() for item in cluster]
        assert sorted(members) == list(range(12))
