"""Tests for topological layering (§5.3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import PairGraph, middle_layer, topological_layers, vectorized_edges

from conftest import random_vectors


def make_graph(vectors):
    pairs = [(i, i + 1000) for i in range(vectors.shape[0])]
    return PairGraph(pairs, vectors)


def kahn_reference(vectors, active=None):
    """Straightforward Kahn peeling over the full dominance relation."""
    n = vectors.shape[0]
    if active is None:
        active = np.ones(n, dtype=bool)
    edges = [
        (u, v) for u, v in vectorized_edges(vectors) if active[u] and active[v]
    ]
    remaining = set(np.flatnonzero(active))
    layers = []
    while remaining:
        indegree = {v: 0 for v in remaining}
        for u, v in edges:
            if u in remaining and v in remaining:
                indegree[v] += 1
        layer = sorted(v for v in remaining if indegree[v] == 0)
        layers.append(layer)
        remaining -= set(layer)
    return layers


class TestTopologicalLayers:
    @settings(max_examples=30, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=0, max_value=25),
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=0, max_value=9999),
        ).map(lambda args: random_vectors(args[2], args[0], args[1]))
    )
    def test_matches_kahn_reference(self, vectors):
        graph = make_graph(vectors)
        got = [sorted(int(v) for v in layer) for layer in topological_layers(graph)]
        assert got == kahn_reference(vectors)

    @settings(max_examples=20, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=1, max_value=20),
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=0, max_value=9999),
            st.integers(min_value=0, max_value=9999),
        ).map(
            lambda args: (
                random_vectors(args[2], args[0], args[1]),
                np.random.default_rng(args[3]).random(args[0]) < 0.6,
            )
        )
    )
    def test_restriction_to_active_subset(self, data):
        vectors, active = data
        graph = make_graph(vectors)
        got = [sorted(int(v) for v in layer) for layer in topological_layers(graph, active)]
        assert got == kahn_reference(vectors, active)

    def test_chain_layers(self):
        vectors = np.array([[0.9], [0.5], [0.1]])
        layers = topological_layers(make_graph(vectors))
        assert [list(l) for l in layers] == [[0], [1], [2]]

    def test_antichain_single_layer(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0], [0.6, 0.4]])
        layers = topological_layers(make_graph(vectors))
        assert len(layers) == 1
        assert sorted(layers[0]) == [0, 1, 2]

    def test_empty_active_mask(self):
        vectors = np.array([[0.5], [0.7]])
        layers = topological_layers(make_graph(vectors), np.zeros(2, dtype=bool))
        assert layers == []

    def test_bad_mask_shape(self):
        vectors = np.array([[0.5]])
        with pytest.raises(GraphError):
            topological_layers(make_graph(vectors), np.zeros(5, dtype=bool))


class TestMiddleLayer:
    def test_paper_indexing(self):
        layers5 = [np.array([i]) for i in range(5)]
        assert middle_layer(layers5)[0] == 2  # L3 of five (paper Fig. 7)
        layers2 = [np.array([10]), np.array([20])]
        assert middle_layer(layers2)[0] == 10  # g2 before g8 (paper §6)
        layers1 = [np.array([7])]
        assert middle_layer(layers1)[0] == 7

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            middle_layer([])
