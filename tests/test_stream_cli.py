"""Golden-transcript tests for ``repro stream`` and the snapshot layout.

The CLI's stdout and the on-disk checkpoint format are both interfaces:
scripts parse the one and future builds read the other.  These tests pin
them — batch lines, summaries, the manifest schema (versioned, header
first), the content-addressed object layout, and the failure modes (a
fresh run refusing an existing manifest, the loader refusing an unknown
schema version).
"""

from __future__ import annotations

import hashlib
import json
import re

import pytest

from repro.cli import main
from repro.data import save_csv
from repro.exceptions import DataError
from repro.stream import MANIFEST_NAME, SNAPSHOT_VERSION, StreamingResolver

BATCH_LINE = re.compile(
    r"^batch (\d+): \+(\d+) records, (\d+) pairs, (\d+) questions, "
    r"clusters=(\d+), checkpoint [0-9a-f]{12}$"
)


@pytest.fixture()
def stream_csv(tmp_path, small_table):
    path = tmp_path / "stream.csv"
    save_csv(small_table, path)
    return path


def _run(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestStreamTranscript:
    def test_batch_lines_and_summary(self, stream_csv, tmp_path, capsys):
        code, out, _ = _run(
            ["stream", str(stream_csv), "--batch-size", "20",
             "--checkpoint-dir", str(tmp_path / "ck"), "--seed", "0"],
            capsys,
        )
        assert code == 0
        lines = out.splitlines()
        batch_lines = [line for line in lines if line.startswith("batch ")]
        assert len(batch_lines) == 3  # 60 records / 20 per batch
        for number, line in enumerate(batch_lines, start=1):
            match = BATCH_LINE.match(line)
            assert match, line
            assert int(match.group(1)) == number
        assert sum(
            int(BATCH_LINE.match(line).group(2)) for line in batch_lines
        ) == 60
        assert "records seen     : 60 in 3 batches" in out
        assert "pooled cost" in out
        assert "quality" in out

    def test_transcript_is_deterministic(self, stream_csv, tmp_path, capsys):
        """Two fresh runs (checkpoint hashes included) emit identical bytes."""
        argv = lambda directory: [  # noqa: E731
            "stream", str(stream_csv), "--batch-size", "25",
            "--checkpoint-dir", str(directory), "--seed", "1",
        ]
        code, first, _ = _run(argv(tmp_path / "a"), capsys)
        assert code == 0
        code, second, _ = _run(argv(tmp_path / "b"), capsys)
        assert code == 0
        assert first == second

    def test_streaming_without_checkpoints(self, stream_csv, capsys):
        code, out, _ = _run(
            ["stream", str(stream_csv), "--batch-size", "30"], capsys
        )
        assert code == 0
        assert "checkpoint" not in out
        assert "records seen     : 60 in 2 batches" in out

    def test_max_batches_limits_ingest(self, stream_csv, capsys):
        code, out, _ = _run(
            ["stream", str(stream_csv), "--batch-size", "20",
             "--max-batches", "1"],
            capsys,
        )
        assert code == 0
        assert "records seen     : 20 in 1 batches" in out


class TestStreamFailureModes:
    def test_existing_manifest_refused_without_resume(
        self, stream_csv, tmp_path, capsys
    ):
        directory = tmp_path / "ck"
        argv = ["stream", str(stream_csv), "--batch-size", "30",
                "--checkpoint-dir", str(directory)]
        assert _run(argv, capsys)[0] == 0
        code, _, err = _run(argv, capsys)
        assert code == 1
        assert "already holds a stream manifest" in err
        assert "restore" in err

    def test_resume_requires_checkpoint_dir(self, stream_csv, capsys):
        code, _, err = _run(
            ["stream", str(stream_csv), "--resume"], capsys
        )
        assert code == 2
        assert "--resume requires --checkpoint-dir" in err

    def test_unlabeled_csv_rejected(self, tmp_path, capsys):
        path = tmp_path / "plain.csv"
        path.write_text("name,city\na,b\n", encoding="utf-8")
        code, _, err = _run(["stream", str(path)], capsys)
        assert code == 2
        assert "entity_id" in err

    def test_negative_batch_size_rejected(self, stream_csv, capsys):
        code, _, err = _run(
            ["stream", str(stream_csv), "--batch-size", "-1"], capsys
        )
        assert code == 2
        assert "--batch-size" in err

    def test_zero_batch_size_asks_the_planner(self, stream_csv, capsys):
        """``--batch-size 0`` delegates sizing to the cost planner."""
        code, out, _ = _run(
            ["stream", str(stream_csv), "--batch-size", "0"], capsys
        )
        assert code == 0
        assert "planned batch size:" in out


class TestResumeFlow:
    def test_kill_resume_matches_uninterrupted(
        self, stream_csv, tmp_path, capsys
    ):
        """Interrupt after batch 1 (torn tail included), resume, compare."""
        straight_dir = tmp_path / "straight"
        code, straight_out, _ = _run(
            ["stream", str(stream_csv), "--batch-size", "20",
             "--checkpoint-dir", str(straight_dir), "--seed", "0"],
            capsys,
        )
        assert code == 0

        resumed_dir = tmp_path / "resumed"
        code, first_out, _ = _run(
            ["stream", str(stream_csv), "--batch-size", "20",
             "--checkpoint-dir", str(resumed_dir), "--seed", "0",
             "--max-batches", "1"],
            capsys,
        )
        assert code == 0
        with open(resumed_dir / MANIFEST_NAME, "ab") as manifest:
            manifest.write(b'{"type": "checkpoint", "torn')
        code, resumed_out, _ = _run(
            ["stream", str(stream_csv), "--batch-size", "20",
             "--checkpoint-dir", str(resumed_dir), "--seed", "0",
             "--resume"],
            capsys,
        )
        assert code == 0
        assert "resumed from batch 1" in resumed_out
        straight_lines = straight_out.splitlines()
        resumed_lines = resumed_out.splitlines()
        # Batch 1's line appears only in the first (killed) run; batches 2+
        # and the final summary must be byte-identical, state hashes and all.
        assert straight_lines[0] == first_out.splitlines()[0]
        assert straight_lines[1:] == resumed_lines[1:]


class TestSnapshotLayout:
    def test_manifest_and_object_store_shape(self, stream_csv, tmp_path, capsys):
        directory = tmp_path / "ck"
        code, _, _ = _run(
            ["stream", str(stream_csv), "--batch-size", "30",
             "--checkpoint-dir", str(directory)],
            capsys,
        )
        assert code == 0
        manifest = directory / MANIFEST_NAME
        records = [
            json.loads(line)
            for line in manifest.read_text(encoding="utf-8").splitlines()
        ]
        assert records[0]["type"] == "header"
        assert records[0]["version"] == SNAPSHOT_VERSION
        assert records[0]["attributes"] == ["name", "city", "cuisine"]
        checkpoints = [r for r in records[1:] if r["type"] == "checkpoint"]
        assert [c["batch"] for c in checkpoints] == [1, 2]
        for checkpoint in checkpoints:
            assert checkpoint["version"] == SNAPSHOT_VERSION
            assert re.fullmatch(r"[0-9a-f]{64}", checkpoint["state_sha"])
            assert set(checkpoint["index"]) == {
                "tokenizer", "meta", "bits", "sizes", "row_of_text"
            }
        blobs = sorted((directory / "objects").rglob("*.blob"))
        assert blobs
        for blob in blobs:
            digest = blob.stem
            assert blob.parent.name == digest[:2]
            assert hashlib.sha256(blob.read_bytes()).hexdigest() == digest

    def test_unknown_snapshot_version_is_rejected(
        self, stream_csv, tmp_path, capsys
    ):
        directory = tmp_path / "ck"
        code, _, _ = _run(
            ["stream", str(stream_csv), "--batch-size", "30",
             "--checkpoint-dir", str(directory)],
            capsys,
        )
        assert code == 0
        manifest = directory / MANIFEST_NAME
        records = [
            json.loads(line)
            for line in manifest.read_text(encoding="utf-8").splitlines()
        ]
        for record in records:
            record["version"] = SNAPSHOT_VERSION + 1
        manifest.write_text(
            "".join(json.dumps(record) + "\n" for record in records),
            encoding="utf-8",
        )
        with pytest.raises(DataError, match="not supported"):
            StreamingResolver.restore(directory)
        code, _, err = _run(
            ["stream", str(stream_csv), "--checkpoint-dir", str(directory),
             "--resume"],
            capsys,
        )
        assert code == 1
        assert "not supported" in err
