"""Tests for the fractional-cascading range tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import RangeTree2D, brute_force_edges, index_edges
from repro.graph.cascading import CascadingRangeTree2D

POINTS = st.lists(
    st.tuples(
        st.sampled_from([0.0, 0.2, 0.4, 0.6, 0.8, 1.0]),
        st.sampled_from([0.0, 0.2, 0.4, 0.6, 0.8, 1.0]),
    ),
    min_size=0,
    max_size=60,
)
QUERY = st.tuples(
    st.floats(min_value=-0.1, max_value=1.1),
    st.floats(min_value=-0.1, max_value=1.1),
)


class TestCascadingTree:
    @settings(max_examples=60, deadline=None)
    @given(POINTS, QUERY)
    def test_matches_plain_range_tree(self, points, query):
        array = np.array(points).reshape(-1, 2)
        plain = RangeTree2D(array)
        cascading = CascadingRangeTree2D(array)
        qx, qy = query
        assert sorted(cascading.query_leq(qx, qy)) == sorted(plain.query_leq(qx, qy))

    def test_one_search_per_query(self):
        rng = np.random.default_rng(0)
        tree = CascadingRangeTree2D(rng.random((200, 2)))
        for _ in range(25):
            tree.query_leq(float(rng.random()), float(rng.random()))
        # The whole point of cascading: a single binary search per query.
        assert tree.searches == 25

    def test_empty_tree(self):
        tree = CascadingRangeTree2D(np.empty((0, 2)))
        assert tree.query_leq(1.0, 1.0) == []
        assert len(tree) == 0

    def test_duplicates_and_boundaries(self):
        points = np.array([[0.5, 0.5]] * 3 + [[0.5, 0.6]])
        tree = CascadingRangeTree2D(points)
        assert sorted(tree.query_leq(0.5, 0.5)) == [0, 1, 2]
        assert sorted(tree.query_leq(0.5, 0.6)) == [0, 1, 2, 3]
        assert tree.query_leq(0.49, 1.0) == []

    def test_shape_validation(self):
        with pytest.raises(GraphError):
            CascadingRangeTree2D(np.zeros((3, 3)))

    def test_index_edges_cascading_option(self, small_bundle):
        _, _, vectors, _ = small_bundle
        assert index_edges(vectors, cascading=True) == brute_force_edges(vectors)
