"""Tests for the four question-selection algorithms (§5)."""

import numpy as np
import pytest

from repro.crowd import PerfectCrowd
from repro.exceptions import ConfigurationError
from repro.graph import GroupedGraph, PairGraph, split_grouping
from repro.selection import (
    MultiPathSelector,
    RandomSelector,
    SELECTORS,
    SinglePathSelector,
    TopoSortSelector,
)

ALL_SELECTORS = [RandomSelector, SinglePathSelector, MultiPathSelector, TopoSortSelector]


@pytest.fixture(scope="module")
def graphs(small_bundle):
    table, pairs, vectors, truth = small_bundle
    base = PairGraph(pairs, vectors)
    grouped = GroupedGraph(base, split_grouping(vectors, 0.1))
    return base, grouped, truth


def label_accuracy(result, truth):
    return np.mean([truth[pair] == label for pair, label in result.labels.items()])


class TestOracleCorrectness:
    @pytest.mark.parametrize("selector_class", ALL_SELECTORS)
    def test_perfect_crowd_near_perfect_labels_on_base(self, graphs, selector_class):
        """With an oracle, mislabels can only come from pairs that violate
        the partial order; the small table has one such pair, so accuracy
        stay near-perfect (the violation plus whatever it implies)."""
        base, _, truth = graphs
        result = selector_class(seed=1).run(base, PerfectCrowd(truth).session())
        assert label_accuracy(result, truth) >= 1 - 5 / len(truth)

    @pytest.mark.parametrize("selector_class", ALL_SELECTORS)
    def test_oracle_errors_confined_to_order_violations(self, graphs, selector_class):
        """Any pair mislabeled under the oracle must be dominated by a
        non-match or dominate a match (a genuine violation of §5.1's
        monotonicity assumption) — never an inference bug."""
        base, _, truth = graphs
        result = selector_class(seed=1).run(base, PerfectCrowd(truth).session())
        truth_array = np.array([truth[pair] for pair in base.pairs])
        for vertex, pair in enumerate(base.pairs):
            if result.labels[pair] == truth[pair]:
                continue
            ancestors_nonmatch = np.any(~truth_array[base.ancestors(vertex)]) if truth[pair] else False
            descendants_match = np.any(truth_array[base.descendants(vertex)]) if not truth[pair] else False
            assert ancestors_nonmatch or descendants_match, pair

    @pytest.mark.parametrize("selector_class", ALL_SELECTORS)
    def test_every_vertex_colored(self, graphs, selector_class):
        base, _, truth = graphs
        result = selector_class(seed=1).run(base, PerfectCrowd(truth).session())
        assert result.state.is_complete()

    def test_grouped_graph_gets_high_accuracy(self, graphs):
        """Grouping may cost a little quality (mixed groups) but not much."""
        _, grouped, truth = graphs
        result = TopoSortSelector().run(grouped, PerfectCrowd(truth).session())
        correct = sum(1 for pair, label in result.labels.items() if truth[pair] == label)
        assert correct / len(truth) >= 0.95


class TestCostProfile:
    @pytest.mark.parametrize("selector_class", ALL_SELECTORS)
    def test_asks_fewer_than_all_vertices(self, graphs, selector_class):
        base, _, truth = graphs
        result = selector_class(seed=1).run(base, PerfectCrowd(truth).session())
        assert result.questions < len(base)

    def test_serial_selectors_one_question_per_iteration(self, graphs):
        base, _, truth = graphs
        for selector in (RandomSelector(seed=2), SinglePathSelector()):
            result = selector.run(base, PerfectCrowd(truth).session())
            assert result.iterations == result.questions

    def test_parallel_selectors_fewer_iterations(self, graphs):
        base, _, truth = graphs
        serial = SinglePathSelector().run(base, PerfectCrowd(truth).session())
        for selector in (MultiPathSelector(), TopoSortSelector()):
            parallel = selector.run(base, PerfectCrowd(truth).session())
            assert parallel.iterations < serial.iterations

    def test_single_path_not_worse_than_random(self, graphs):
        """The paper's Appendix E.2.1 finding, averaged over seeds."""
        base, _, truth = graphs
        single = SinglePathSelector().run(base, PerfectCrowd(truth).session())
        random_costs = [
            RandomSelector(seed=s).run(base, PerfectCrowd(truth).session()).questions
            for s in range(5)
        ]
        assert single.questions <= np.mean(random_costs) * 1.1

    def test_grouping_reduces_questions(self, graphs):
        base, grouped, truth = graphs
        raw = TopoSortSelector().run(base, PerfectCrowd(truth).session())
        grp = TopoSortSelector().run(grouped, PerfectCrowd(truth).session())
        assert grp.questions <= raw.questions


class TestResultBookkeeping:
    def test_result_fields(self, graphs):
        base, _, truth = graphs
        result = TopoSortSelector().run(base, PerfectCrowd(truth).session())
        assert result.name == "power"
        assert result.assignment_time >= 0.0
        assert result.cost_cents > 0
        gold = {p for p, v in truth.items() if v}
        assert len(result.matches ^ gold) <= 2  # only order violations differ

    def test_deterministic_given_seed(self, graphs):
        base, _, truth = graphs
        a = RandomSelector(seed=7).run(base, PerfectCrowd(truth).session())
        b = RandomSelector(seed=7).run(base, PerfectCrowd(truth).session())
        assert a.state.asked_order == b.state.asked_order


class TestTopoKnobs:
    def test_invalid_layer_position(self):
        with pytest.raises(ConfigurationError):
            TopoSortSelector(layer_position=2.0)

    @pytest.mark.parametrize("position", [0.0, 0.5, 1.0])
    def test_all_positions_terminate(self, graphs, position):
        base, _, truth = graphs
        selector = TopoSortSelector(layer_position=position)
        result = selector.run(base, PerfectCrowd(truth).session())
        assert result.state.is_complete()

    def test_registry_contains_all(self):
        assert set(SELECTORS) == {"random", "single-path", "multi-path", "power"}
