"""Tests for ground-truth clusters and gold pairs."""

import pytest

from repro.data import Table, canonical_pair, entity_clusters, num_entities, pair_truth, true_match_pairs
from repro.exceptions import DataError


@pytest.fixture()
def labeled_table():
    return Table.from_rows(
        "t", ("a",), [("w",), ("x",), ("y",), ("z",)], entity_ids=[0, 1, 0, 1]
    )


class TestCanonicalPair:
    def test_orders_endpoints(self):
        assert canonical_pair(5, 2) == (2, 5)
        assert canonical_pair(2, 5) == (2, 5)

    def test_rejects_self_pair(self):
        with pytest.raises(DataError):
            canonical_pair(3, 3)


class TestClusters:
    def test_entity_clusters(self, labeled_table):
        clusters = entity_clusters(labeled_table)
        assert clusters == {0: [0, 2], 1: [1, 3]}

    def test_num_entities(self, labeled_table):
        assert num_entities(labeled_table) == 2

    def test_requires_ground_truth(self):
        table = Table.from_rows("t", ("a",), [("x",)])
        with pytest.raises(DataError):
            entity_clusters(table)


class TestTrueMatchPairs:
    def test_all_within_cluster_pairs(self, labeled_table):
        assert true_match_pairs(labeled_table) == {(0, 2), (1, 3)}

    def test_singletons_produce_nothing(self):
        table = Table.from_rows("t", ("a",), [("x",), ("y",)], entity_ids=[0, 1])
        assert true_match_pairs(table) == set()

    def test_cluster_of_three(self):
        table = Table.from_rows(
            "t", ("a",), [("x",)] * 3, entity_ids=[7, 7, 7]
        )
        assert true_match_pairs(table) == {(0, 1), (0, 2), (1, 2)}


class TestPairTruth:
    def test_truth_values(self, labeled_table):
        truth = pair_truth(labeled_table, [(0, 2), (0, 1)])
        assert truth == {(0, 2): True, (0, 1): False}

    def test_canonicalises_input(self, labeled_table):
        truth = pair_truth(labeled_table, [(2, 0)])
        assert truth == {(0, 2): True}
