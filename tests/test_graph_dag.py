"""Tests for PairGraph / OrderedGraph."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import PairGraph


@pytest.fixture()
def chain_graph():
    """Three totally ordered vertices plus one incomparable."""
    pairs = [(0, 1), (0, 2), (1, 2), (3, 4)]
    vectors = np.array(
        [
            [0.9, 0.9],
            [0.5, 0.5],
            [0.1, 0.1],
            [1.0, 0.0],
        ]
    )
    return PairGraph(pairs, vectors)


class TestPairGraph:
    def test_basic_shape(self, chain_graph):
        assert len(chain_graph) == 4
        assert chain_graph.num_attributes == 2

    def test_descendants_and_ancestors(self, chain_graph):
        assert sorted(chain_graph.descendants(0)) == [1, 2]
        assert sorted(chain_graph.ancestors(2)) == [0, 1]
        assert list(chain_graph.descendants(3)) == []
        assert list(chain_graph.ancestors(3)) == []

    def test_adjacency_is_full_relation(self, chain_graph):
        adjacency = chain_graph.adjacency()
        assert sorted(adjacency[0]) == [1, 2]
        assert sorted(adjacency[1]) == [2]
        assert chain_graph.num_edges == 3

    def test_self_never_related(self, chain_graph):
        for vertex in range(4):
            assert not chain_graph.descendant_mask(vertex)[vertex]
            assert not chain_graph.ancestor_mask(vertex)[vertex]

    def test_equal_vectors_incomparable(self):
        graph = PairGraph([(0, 1), (2, 3)], np.array([[0.5, 0.5], [0.5, 0.5]]))
        assert graph.num_edges == 0

    def test_member_and_representative(self, chain_graph):
        rng = np.random.default_rng(0)
        assert chain_graph.member_pairs(1) == ((0, 2),)
        assert chain_graph.representative_pair(1, rng) == (0, 2)

    def test_vertex_of_pair(self, chain_graph):
        assert chain_graph.vertex_of_pair((1, 2)) == 2
        with pytest.raises(GraphError):
            chain_graph.vertex_of_pair((9, 9))

    def test_shape_validation(self):
        with pytest.raises(GraphError):
            PairGraph([(0, 1)], np.array([1.0, 2.0]))  # 1-D vectors
        with pytest.raises(GraphError):
            PairGraph([(0, 1), (1, 2)], np.array([[1.0]]))  # count mismatch

    def test_vertex_range_checked(self, chain_graph):
        with pytest.raises(GraphError):
            chain_graph.descendants(99)

    def test_comparability_fraction(self, chain_graph):
        # 3 comparable pairs of 6 possible.
        assert chain_graph.comparability_fraction() == pytest.approx(0.5)
