"""Tests for question-to-worker assignment policies."""

import pytest

from repro.crowd import (
    AssigningCrowd,
    BestWorkerAssignment,
    RandomAssignment,
    RoundRobinAssignment,
    WorkerPool,
)
from repro.crowd.quality import estimate_accuracy_from_gold
from repro.exceptions import ConfigurationError

TRUTH = {(i, i + 1): bool(i % 4 == 0) for i in range(0, 600, 2)}
GOLD = {(10_000 + i, 10_001 + i): bool(i % 2) for i in range(0, 60, 2)}


@pytest.fixture(scope="module")
def pool():
    return WorkerPool(size=30, accuracy_range=(0.55, 0.98), seed=3)


@pytest.fixture(scope="module")
def estimates(pool):
    return {w.worker_id: estimate_accuracy_from_gold(w, GOLD) for w in pool.workers}


class TestRoundRobin:
    def test_even_load(self, pool):
        policy = RoundRobinAssignment()
        loads = {}
        for i in range(0, 60, 2):
            for worker in policy.assign(pool, (i, i + 1), 5):
                loads[worker.worker_id] = loads.get(worker.worker_id, 0) + 1
        assert max(loads.values()) == min(loads.values())  # 150 / 30 = 5 each

    def test_distinct_within_question(self, pool):
        workers = RoundRobinAssignment().assign(pool, (0, 1), 5)
        assert len({w.worker_id for w in workers}) == 5

    def test_oversized_request(self, pool):
        with pytest.raises(ConfigurationError):
            RoundRobinAssignment().assign(pool, (0, 1), 31)


class TestBestWorker:
    def test_prefers_accurate_workers(self, pool, estimates):
        policy = BestWorkerAssignment(estimates, max_load_share=1.0)
        chosen = policy.assign(pool, (0, 1), 5)
        best_ids = sorted(estimates, key=estimates.get, reverse=True)[:5]
        assert sorted(w.worker_id for w in chosen) == sorted(best_ids)

    def test_load_cap_diversifies(self, pool, estimates):
        policy = BestWorkerAssignment(estimates, max_load_share=0.1)
        used = {}
        total = 0
        for i in range(0, 200, 2):
            for worker in policy.assign(pool, (i, i + 1), 5):
                used[worker.worker_id] = used.get(worker.worker_id, 0) + 1
            total += 5
        # A 10% cap needs at least ten workers to carry the load, and no
        # worker may meaningfully exceed its share (small burst slack).
        assert len(used) >= 10
        assert max(used.values()) / total <= 0.15

    def test_validation(self, estimates):
        with pytest.raises(ConfigurationError):
            BestWorkerAssignment({})
        with pytest.raises(ConfigurationError):
            BestWorkerAssignment(estimates, max_load_share=0.0)


class TestAssigningCrowd:
    def accuracy(self, crowd):
        return sum(crowd.answer(p).answer == t for p, t in TRUTH.items()) / len(TRUTH)

    def test_best_assignment_beats_random(self, pool, estimates):
        random_crowd = AssigningCrowd(TRUTH, pool, RandomAssignment())
        best_crowd = AssigningCrowd(
            TRUTH, pool, BestWorkerAssignment(estimates, max_load_share=0.4)
        )
        assert self.accuracy(best_crowd) > self.accuracy(random_crowd)

    def test_random_policy_matches_default_platform(self, pool):
        from repro.crowd import SimulatedCrowd

        policy_crowd = AssigningCrowd(TRUTH, pool, RandomAssignment())
        default_crowd = SimulatedCrowd(TRUTH, pool)
        for pair in list(TRUTH)[:30]:
            assert policy_crowd.answer(pair) == default_crowd.answer(pair)

    def test_answers_cached(self, pool):
        crowd = AssigningCrowd(TRUTH, pool, RoundRobinAssignment())
        pair = next(iter(TRUTH))
        assert crowd.answer(pair) is crowd.answer(pair)
