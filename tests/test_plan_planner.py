"""Planner decisions, the apply_plan write barrier, and the auto-join hook.

Covers the three layers between a profile and a run:

* decision logic — synthetic profiles with extreme coefficients force
  each knob's choice, so every test is a theorem about the cost model
  rather than a bet on this host's speed;
* ``apply_plan`` — rewrites plannable knobs only, disables re-planning
  on the clone, respects an explicit user shard count, and refuses
  semantic knobs (the transparency write barrier);
* the calibrated ``method="auto"`` join hook — planned and static auto
  must pick equivalent joins on the seed datasets (same pair universe),
  and the admission EWMA accepts a planner seed.
"""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace

import pytest

from repro.core import PowerConfig, PowerResolver
from repro.data.generators import load_dataset
from repro.exceptions import ConfigurationError
from repro.plan.calibrate import (
    CalibrationProfile,
    default_profile,
    host_fingerprint,
)
from repro.plan.planner import (
    MAX_STREAM_BATCH,
    MIN_STREAM_BATCH,
    PLANNABLE_KNOBS,
    Plan,
    PlanDecision,
    TableStats,
    apply_plan,
    choose_join_method,
    choose_selection,
    choose_shards,
    choose_stream_batch,
    choose_vectorize,
    plan_for_stats,
)
from repro.verify.battery import subsample_table

STATS = TableStats(rows=500, attrs=4, avg_tokens=8.0, est_pairs=400)


def profile_with(calibrated: bool = True, **overrides) -> CalibrationProfile:
    """A synthetic profile: default coefficients with stage overrides."""
    coefficients = {
        stage: dict(coeffs)
        for stage, coeffs in default_profile().coefficients.items()
    }
    for stage, coeffs in overrides.items():
        coefficients[stage] = coeffs
    return CalibrationProfile(
        coefficients=coefficients,
        host=None,
        calibrated=calibrated,
        meta={"source": "test"},
    )


def calibrated_profile_file(path):
    """Write a calibrated-flagged profile for the hook tests."""
    profile = CalibrationProfile(
        coefficients=default_profile().coefficients,
        host=host_fingerprint(),
        calibrated=True,
        meta={"source": "test"},
    )
    profile.save(path)
    return path


@pytest.fixture
def hook_env(tmp_path, monkeypatch):
    """Point the hooks at a tmp profile path and reset their cache."""
    from repro.plan import hooks

    path = tmp_path / "profile.json"
    monkeypatch.setenv("REPRO_PLAN_PROFILE", str(path))
    hooks.clear_cache()
    yield path
    hooks.clear_cache()


class TestDecisions:
    def test_penalized_naive_join_loses(self):
        profile = profile_with(join_naive={"c0": 10.0, "c1": 1.0})
        decision = choose_join_method(STATS, profile)
        assert decision.chosen in ("prefix", "sparse")
        assert ("naive", pytest.approx(10.0 + STATS.rows * (STATS.rows - 1) / 2 * 8.0)) in [
            (value, seconds) for value, seconds in decision.alternatives
        ]

    def test_penalized_index_joins_lose(self):
        profile = profile_with(
            join_prefix={"c0": 10.0, "c1": 1.0},
            join_sparse={"c0": 10.0, "c1": 1.0},
        )
        assert choose_join_method(STATS, profile).chosen == "naive"

    def test_allow_sparse_false_never_prices_sparse(self):
        profile = profile_with(join_sparse={"c0": 0.0, "c1": 0.0})
        decision = choose_join_method(STATS, profile, allow_sparse=False)
        assert decision.chosen != "sparse"
        assert all(value != "sparse" for value, _ in decision.alternatives)

    def test_vectorize_follows_coefficients(self):
        slow_scalar = profile_with(vectorize_scalar={"c0": 10.0, "c1": 1.0})
        assert choose_vectorize(STATS, slow_scalar).chosen is True
        slow_batch = profile_with(vectorize_batch={"c0": 10.0, "c1": 1.0})
        assert choose_vectorize(STATS, slow_batch).chosen is False

    def test_reachability_index_tracks_engine(self):
        slow_scratch = profile_with(selection_scratch={"c0": 10.0, "c1": 1.0})
        engine, reachability = choose_selection(STATS, slow_scratch)
        assert engine.chosen is True
        assert reachability.chosen == "auto"
        slow_incremental = profile_with(
            selection_incremental={"c0": 10.0, "c1": 1.0}
        )
        engine, reachability = choose_selection(STATS, slow_incremental)
        assert engine.chosen is False
        assert reachability.chosen == "off"

    def test_shards_track_lanes_and_price_the_rest(self):
        # Speedup saturates at the lane count, so extra shards are pure
        # dispatch overhead: one shard per lane wins (ties break to
        # fewest), and the finer-grained candidates are priced rejects.
        decision = choose_shards(STATS, default_profile(), workers=4)
        assert decision.chosen == 4
        assert {value for value, _ in decision.alternatives} == {8, 16, 32}
        assert choose_shards(STATS, default_profile(), workers=None).chosen == 1
        # Ruinous dispatch never flips the choice below the lane count.
        ruinous = profile_with(shard_dispatch={"c0": 0.0, "c1": 100.0})
        assert choose_shards(STATS, ruinous, workers=4).chosen == 4

    def test_stream_batch_clamped_to_bounds(self):
        fast = profile_with(stream_extend={"c0": 0.0, "c1": 1e-12})
        assert choose_stream_batch(STATS, fast).chosen == MAX_STREAM_BATCH
        slow = profile_with(stream_extend={"c0": 0.0, "c1": 10.0})
        assert choose_stream_batch(STATS, slow).chosen == MIN_STREAM_BATCH

    def test_plan_covers_every_plannable_knob(self):
        plan = plan_for_stats(STATS, default_profile(), workers=2)
        assert sorted(plan.knobs()) == sorted(PLANNABLE_KNOBS)
        assert plan.predicted_total_seconds() >= 0.0
        payload = plan.to_payload()
        import json

        json.dumps(payload)  # must be JSON-serializable for extras/snapshots

    def test_plan_rejects_semantic_knob_at_construction(self):
        rogue = PlanDecision(knob="epsilon", chosen=None, prediction=None)
        with pytest.raises(ConfigurationError, match="epsilon"):
            Plan(stats=STATS, calibrated=False, decisions=(rogue,))


class TestApplyPlan:
    def test_rewrites_knobs_and_disables_replanning(self):
        profile = profile_with(
            join_prefix={"c0": 10.0, "c1": 1.0},
            join_sparse={"c0": 10.0, "c1": 1.0},
        )
        plan = plan_for_stats(STATS, profile)
        config = PowerConfig(plan="auto")
        planned = apply_plan(config, plan)
        assert planned.join_method == "naive"
        assert planned.plan == "off"
        assert not hasattr(planned, "stream_batch_size")
        # The original is untouched (PowerConfig is frozen, but pin it).
        assert config.plan == "auto"

    def test_explicit_user_shards_outrank_the_planner(self):
        plan = plan_for_stats(STATS, default_profile(), workers=4)
        planned = apply_plan(PowerConfig(shards=7), plan)
        assert planned.shards == 7

    def test_refuses_semantic_knobs(self):
        rogue = SimpleNamespace(
            decisions=(
                PlanDecision(knob="join_method", chosen="naive", prediction=None),
                SimpleNamespace(knob="epsilon", chosen=None),
            )
        )
        with pytest.raises(ConfigurationError, match="epsilon"):
            apply_plan(PowerConfig(), rogue)


class TestAutoJoinHook:
    """Satellite regression: calibrated and static auto pick equivalent joins."""

    @pytest.mark.parametrize("dataset,scale", [("restaurant", 0.1), ("cora", 0.1)])
    def test_auto_join_parity_on_seed_datasets(self, dataset, scale, hook_env):
        from repro.similarity import similar_pairs

        table = subsample_table(load_dataset(dataset), scale)
        static_auto = similar_pairs(table, 0.2, method="auto")
        calibrated_profile_file(hook_env)
        from repro.plan import hooks

        hooks.clear_cache()
        planned_auto = similar_pairs(table, 0.2, method="auto")
        explicit = similar_pairs(table, 0.2, method="naive")
        assert static_auto == planned_auto == explicit

    def test_hooks_silent_without_profile(self, hook_env):
        from repro.plan import hooks

        assert hooks.calibrated_profile() is None
        assert hooks.planned_join_method(100, 8.0) is None
        assert hooks.predicted_batch_seconds(100) is None
        # The stream-batch hook always answers (defaults as fallback).
        batch = hooks.planned_stream_batch(8.0)
        assert MIN_STREAM_BATCH <= batch <= MAX_STREAM_BATCH

    def test_hooks_answer_with_calibrated_profile(self, hook_env):
        calibrated_profile_file(hook_env)
        from repro.plan import hooks

        hooks.clear_cache()
        assert hooks.calibrated_profile() is not None
        assert hooks.planned_join_method(100, 8.0) in ("naive", "prefix")
        assert hooks.predicted_batch_seconds(100) > 0.0


class TestPlannedResolveTransparency:
    def test_planned_resolve_is_bit_identical(self, hook_env):
        table = subsample_table(load_dataset("restaurant"), 0.05)
        static = PowerResolver(PowerConfig(seed=0)).resolve(table, worker_band="90")
        planned = PowerResolver(PowerConfig(seed=0, plan="auto")).resolve(
            table, worker_band="90"
        )
        assert planned.matches == static.matches
        assert planned.clusters == static.clusters
        assert planned.questions == static.questions
        assert planned.cost_cents == static.cost_cents
        assert "plan" in planned.selection.extras

    def test_plan_off_records_nothing(self, hook_env):
        table = subsample_table(load_dataset("restaurant"), 0.05)
        result = PowerResolver(PowerConfig(seed=0)).resolve(table, worker_band="90")
        assert "plan" not in result.selection.extras

    def test_invalid_plan_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerConfig(plan="")


class TestAdmissionSeed:
    def test_seed_replaces_static_default(self):
        from repro.serve.admission import (
            DEFAULT_BATCH_SECONDS,
            AdmissionController,
        )

        assert (
            AdmissionController().batch_seconds_estimate == DEFAULT_BATCH_SECONDS
        )
        seeded = AdmissionController(initial_batch_seconds=0.25)
        assert seeded.batch_seconds_estimate == 0.25

    def test_non_positive_seed_rejected(self):
        from repro.serve.admission import AdmissionController

        with pytest.raises(ConfigurationError):
            AdmissionController(initial_batch_seconds=0.0)


def test_dataclass_replace_revalidates_plan_field():
    config = PowerConfig()
    with pytest.raises(ConfigurationError):
        dataclasses.replace(config, plan=42)
