"""Interplay tests: grouped graphs under selection and error tolerance."""

import numpy as np
import pytest

from repro.crowd import PerfectCrowd, SimulatedCrowd, WorkerPool
from repro.graph import Color, GroupedGraph, PairGraph, split_grouping
from repro.selection import (
    ErrorPolicy,
    MultiPathSelector,
    RandomSelector,
    SinglePathSelector,
    TopoSortSelector,
)

SELECTORS = [RandomSelector, SinglePathSelector, MultiPathSelector, TopoSortSelector]


@pytest.fixture(scope="module")
def grouped_setup(small_bundle):
    _, pairs, vectors, truth = small_bundle
    base = PairGraph(pairs, vectors)
    grouped = GroupedGraph(base, split_grouping(vectors, 0.1))
    return grouped, truth


class TestGroupedSelection:
    @pytest.mark.parametrize("selector_class", SELECTORS)
    def test_all_pairs_labeled(self, grouped_setup, selector_class):
        grouped, truth = grouped_setup
        result = selector_class(seed=2).run(grouped, PerfectCrowd(truth).session())
        assert set(result.labels) == set(truth)

    @pytest.mark.parametrize("selector_class", SELECTORS)
    def test_fewer_questions_than_groups(self, grouped_setup, selector_class):
        grouped, truth = grouped_setup
        result = selector_class(seed=2).run(grouped, PerfectCrowd(truth).session())
        assert result.questions <= len(grouped)

    def test_group_members_share_decisions_without_error_policy(self, grouped_setup):
        """Plain Power colors whole groups: every member pair of a GREEN/RED
        group carries the same label."""
        grouped, truth = grouped_setup
        result = TopoSortSelector(seed=1).run(grouped, PerfectCrowd(truth).session())
        for vertex in range(len(grouped)):
            color = result.state.color_of(vertex)
            members = grouped.member_pairs(vertex)
            labels = {result.labels[pair] for pair in members}
            if color in (Color.GREEN, Color.RED):
                assert len(labels) == 1

    def test_blue_groups_can_split_per_pair(self, grouped_setup):
        """Power+ may give different labels to pairs inside one BLUE group —
        the histogram decides per pair, not per group."""
        grouped, truth = grouped_setup
        noisy = SimulatedCrowd(truth, WorkerPool(accuracy_range=(0.6, 0.7), seed=8))
        selector = TopoSortSelector(error_policy=ErrorPolicy(), seed=8)
        result = selector.run(grouped, noisy.session())
        assert set(result.labels) == set(truth)
        # If any BLUE group has both kinds of pairs, labels may differ;
        # either way every pair must have received some decision.
        for vertex in result.state.blue_vertices():
            for pair in grouped.member_pairs(int(vertex)):
                assert pair in result.labels


class TestRepresentativeSampling:
    def test_representative_depends_on_rng(self, grouped_setup):
        grouped, _ = grouped_setup
        big = max(range(len(grouped)), key=lambda v: len(grouped.grouping[v]))
        if len(grouped.grouping[big]) < 2:
            pytest.skip("no multi-member group in this fixture")
        rng = np.random.default_rng(0)
        seen = {grouped.representative_pair(big, rng) for _ in range(30)}
        assert len(seen) > 1  # different members get sampled

    def test_same_seed_same_run(self, grouped_setup):
        grouped, truth = grouped_setup
        a = TopoSortSelector(seed=5).run(grouped, PerfectCrowd(truth).session())
        b = TopoSortSelector(seed=5).run(grouped, PerfectCrowd(truth).session())
        assert a.state.asked_order == b.state.asked_order
        assert a.labels == b.labels
