"""Tests for worker-quality estimation and quality-aware aggregation."""

import numpy as np
import pytest

from repro.crowd import SimulatedCrowd, Worker, WorkerPool
from repro.crowd.quality import (
    DawidSkeneEstimator,
    QualityAwareCrowd,
    estimate_accuracy_from_gold,
)
from repro.exceptions import ConfigurationError, CrowdError

GOLD = {(1000 + i, 1001 + i): bool(i % 2) for i in range(0, 120, 2)}


def collect_votes(pool, truth, assignments=5):
    votes = {}
    for pair, answer in truth.items():
        workers = pool.assign(pair, assignments)
        votes[pair] = [(w.worker_id, w.answer(pair, answer)) for w in workers]
    return votes


class TestGoldEstimation:
    def test_perfect_worker_high_estimate(self):
        worker = Worker(worker_id=0, accuracy=1.0, seed=0)
        estimate = estimate_accuracy_from_gold(worker, GOLD)
        assert estimate > 0.95

    def test_estimate_tracks_true_accuracy(self):
        for accuracy in (0.6, 0.75, 0.9):
            worker = Worker(worker_id=1, accuracy=accuracy, seed=7)
            estimate = estimate_accuracy_from_gold(worker, GOLD)
            assert abs(estimate - accuracy) < 0.15

    def test_smoothing_keeps_estimates_interior(self):
        worker = Worker(worker_id=0, accuracy=1.0, seed=0)
        estimate = estimate_accuracy_from_gold(worker, {(0, 1): True})
        assert 0.0 < estimate < 1.0

    def test_negative_smoothing_rejected(self):
        worker = Worker(worker_id=0, accuracy=0.9, seed=0)
        with pytest.raises(ConfigurationError):
            estimate_accuracy_from_gold(worker, GOLD, smoothing=-1)


class TestDawidSkene:
    @pytest.fixture(scope="class")
    def setup(self):
        pool = WorkerPool(size=25, accuracy_range=(0.55, 0.95), seed=3)
        truth = {(i, i + 1): bool(i % 4 == 0) for i in range(0, 800, 2)}
        votes = collect_votes(pool, truth)
        return pool, truth, votes

    def test_accuracy_estimates_close_to_truth(self, setup):
        pool, _, votes = setup
        result = DawidSkeneEstimator(prior_yes=0.25).estimate(votes)
        true_accuracy = {w.worker_id: w.accuracy for w in pool.workers}
        errors = [
            abs(result.accuracies[w] - true_accuracy[w]) for w in result.accuracies
        ]
        assert np.mean(errors) < 0.1

    def test_posteriors_classify_well(self, setup):
        _, truth, votes = setup
        result = DawidSkeneEstimator(prior_yes=0.25).estimate(votes)
        correct = sum(
            (result.posteriors[pair] > 0.5) == answer for pair, answer in truth.items()
        )
        assert correct / len(truth) > 0.8

    def test_posteriors_are_probabilities(self, setup):
        _, _, votes = setup
        result = DawidSkeneEstimator().estimate(votes)
        assert all(0.0 <= p <= 1.0 for p in result.posteriors.values())

    def test_converges(self, setup):
        _, _, votes = setup
        result = DawidSkeneEstimator(max_iterations=200).estimate(votes)
        assert result.iterations < 200

    def test_empty_votes_rejected(self):
        with pytest.raises(CrowdError):
            DawidSkeneEstimator().estimate({})

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            DawidSkeneEstimator(prior_yes=0.0)
        with pytest.raises(ConfigurationError):
            DawidSkeneEstimator(max_iterations=0)


class TestQualityAwareCrowd:
    @pytest.fixture(scope="class")
    def truth(self):
        return {(i, i + 1): bool(i % 4 == 0) for i in range(0, 1000, 2)}

    def test_beats_unweighted_majority_with_mixed_pool(self, truth):
        """With a pool mixing near-random and expert workers, log-odds
        weighting by estimated accuracy should beat flat majority."""
        pool = WorkerPool(size=30, accuracy_range=(0.5, 1.0), seed=11)
        aware = QualityAwareCrowd(truth, pool, gold=GOLD)
        majority = SimulatedCrowd(truth, pool, aggregation="majority")
        aware_correct = sum(aware.answer(p).answer == t for p, t in truth.items())
        majority_correct = sum(
            majority.answer(p).answer == t for p, t in truth.items()
        )
        assert aware_correct >= majority_correct

    def test_confidence_in_valid_range(self, truth):
        pool = WorkerPool(size=10, seed=0)
        aware = QualityAwareCrowd(truth, pool, gold=GOLD)
        outcome = aware.answer(next(iter(truth)))
        assert 0.5 <= outcome.confidence <= 1.0

    def test_answers_cached(self, truth):
        pool = WorkerPool(size=10, seed=0)
        aware = QualityAwareCrowd(truth, pool, gold=GOLD)
        pair = next(iter(truth))
        assert aware.answer(pair) is aware.answer(pair)

    def test_requires_gold(self, truth):
        with pytest.raises(ConfigurationError):
            QualityAwareCrowd(truth, WorkerPool(size=5), gold={})

    def test_unknown_pair_raises(self, truth):
        aware = QualityAwareCrowd(truth, WorkerPool(size=10), gold=GOLD)
        with pytest.raises(CrowdError):
            aware.answer((99_991, 99_992))
