"""Shared fixtures: the paper's running example and small synthetic tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd import PerfectCrowd, SimulatedCrowd, WorkerPool
from repro.data import paper_pairs, paper_table, paper_vectors, synthesize
from repro.data.ground_truth import pair_truth
from repro.data.perturb import LIGHT_PERTURBATIONS
from repro.data.vocab import CITIES, CUISINES, RESTAURANT_NAME_HEADS
from repro.similarity import SimilarityConfig, similar_pairs, similarity_matrix


@pytest.fixture(scope="session")
def paper():
    """The paper's Table 1/2 bundle: table, pairs, vectors, truth."""
    table = paper_table()
    pairs = paper_pairs()
    vectors = paper_vectors()
    truth = pair_truth(table, pairs)
    return table, pairs, vectors, truth


def _tiny_entity(rng: np.random.Generator) -> tuple[str, str, str]:
    name = RESTAURANT_NAME_HEADS[int(rng.integers(0, len(RESTAURANT_NAME_HEADS)))]
    city = CITIES[int(rng.integers(0, len(CITIES)))]
    cuisine = CUISINES[int(rng.integers(0, len(CUISINES)))]
    return (f"{name} house", city, cuisine)


@pytest.fixture(scope="session")
def small_table():
    """A 60-record / 35-entity table: big enough for non-trivial graphs,
    small enough that every test stays fast."""
    return synthesize(
        name="small",
        attributes=("name", "city", "cuisine"),
        entity_factory=_tiny_entity,
        num_entities=35,
        num_records=60,
        seed=99,
        intensity=0.4,
        pool=LIGHT_PERTURBATIONS,
    )


@pytest.fixture(scope="session")
def small_bundle(small_table):
    """(table, pairs, vectors, truth) for the small synthetic table."""
    pairs = similar_pairs(small_table, 0.2)
    config = SimilarityConfig.uniform(small_table.num_attributes)
    vectors = similarity_matrix(small_table, pairs, config)
    truth = pair_truth(small_table, pairs)
    return small_table, pairs, vectors, truth


@pytest.fixture()
def oracle(small_bundle):
    _, _, _, truth = small_bundle
    return PerfectCrowd(truth)


@pytest.fixture()
def noisy_crowd(small_bundle):
    _, _, _, truth = small_bundle
    return SimulatedCrowd(truth, WorkerPool(accuracy_range="80", seed=5))


def random_vectors(seed: int, n: int, m: int, levels: int = 4) -> np.ndarray:
    """Discretised random similarity vectors (ties included on purpose)."""
    rng = np.random.default_rng(seed)
    return np.round(rng.random((n, m)) * levels) / levels
