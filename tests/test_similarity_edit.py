"""Unit tests for Levenshtein edit distance and edit similarity (Eq. 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.similarity import edit_distance, edit_distance_within, edit_similarity

TEXT = st.text(alphabet="abcde ", max_size=24)


class TestEditDistance:
    def test_identical_strings(self):
        assert edit_distance("kitten", "kitten") == 0

    def test_empty_vs_nonempty(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_classic_kitten_sitting(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_single_substitution(self):
        assert edit_distance("cat", "car") == 1

    def test_single_insertion(self):
        assert edit_distance("cat", "cart") == 1

    def test_transposition_costs_two(self):
        # Plain Levenshtein (no Damerau): swap = delete + insert.
        assert edit_distance("ab", "ba") == 2

    @given(TEXT, TEXT)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(TEXT, TEXT)
    def test_bounds(self, a, b):
        d = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(TEXT, TEXT, TEXT)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(TEXT, TEXT)
    def test_zero_iff_equal(self, a, b):
        assert (edit_distance(a, b) == 0) == (a == b)


class TestEditDistanceWithin:
    @given(TEXT, TEXT, st.integers(min_value=0, max_value=10))
    def test_agrees_with_full_distance(self, a, b, k):
        expected = edit_distance(a, b)
        got = edit_distance_within(a, b, k)
        if expected <= k:
            assert got == expected
        else:
            assert got is None

    def test_negative_budget(self):
        assert edit_distance_within("a", "a", -1) is None

    def test_length_gap_short_circuit(self):
        assert edit_distance_within("a", "abcdef", 2) is None


class TestEditSimilarity:
    def test_equal_strings(self):
        assert edit_similarity("abc", "abc") == 1.0

    def test_both_empty(self):
        assert edit_similarity("", "") == 1.0

    def test_disjoint_strings(self):
        assert edit_similarity("aaa", "bbb") == 0.0

    def test_paper_normalisation(self):
        # EDS = 1 - ED / max(len): one edit on a 4-char string -> 0.75.
        assert edit_similarity("abcd", "abce") == pytest.approx(0.75)

    @given(TEXT, TEXT)
    def test_range(self, a, b):
        assert 0.0 <= edit_similarity(a, b) <= 1.0

    @given(TEXT, TEXT)
    def test_symmetry(self, a, b):
        assert edit_similarity(a, b) == pytest.approx(edit_similarity(b, a))
