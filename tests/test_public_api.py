"""Public-API integrity: __all__ correctness and registry instantiability."""

import importlib
import pkgutil

import pytest

import repro


def modules_with_all():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if hasattr(module, "__all__"):
            yield module


class TestAllExports:
    def test_every_all_name_exists(self):
        for module in modules_with_all():
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"

    def test_no_duplicate_exports(self):
        for module in modules_with_all():
            assert len(module.__all__) == len(set(module.__all__)), module.__name__

    def test_top_level_convenience_imports(self):
        # The documented quickstart names must live at the top level.
        for name in ("PowerResolver", "PowerConfig", "restaurant", "cora",
                     "acmpub", "load_csv", "save_csv", "SimulatedCrowd",
                     "pairwise_quality"):
            assert hasattr(repro, name), name


class TestRegistries:
    def test_selector_registry_instantiable(self):
        from repro.selection import SELECTORS

        for name, cls in SELECTORS.items():
            selector = cls()
            assert selector.name == name

    def test_baseline_registry_instantiable(self):
        from repro.baselines import BASELINES

        for name, cls in BASELINES.items():
            resolver = cls()
            assert resolver.name == name

    def test_similarity_registry_callable(self):
        from repro.similarity import SIMILARITY_FUNCTIONS

        for name, function in SIMILARITY_FUNCTIONS.items():
            assert function("abc", "abc") == 1.0, name

    def test_construction_registry(self):
        import numpy as np

        from repro.graph import CONSTRUCTION_ALGORITHMS

        vectors = np.array([[0.9, 0.9], [0.1, 0.1]])
        for name, algorithm in CONSTRUCTION_ALGORITHMS.items():
            assert algorithm(vectors) == {(0, 1)}, name

    def test_grouping_registry(self):
        import numpy as np

        from repro.graph import GROUPING_ALGORITHMS

        vectors = np.array([[0.5], [0.52], [0.9]])
        for name, algorithm in GROUPING_ALGORITHMS.items():
            groups = algorithm(vectors, 0.1)
            assert sorted(map(sorted, groups)) == [[0, 1], [2]], name
