"""Tests for the opt-in sampling profiler (POSIX ``ITIMER_PROF`` only)."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import SamplingProfiler
from repro.obs.profiler import SUPPORTED

pytestmark = pytest.mark.skipif(
    not SUPPORTED, reason="needs signal.setitimer/SIGPROF (POSIX)"
)


def burn_cpu(seconds: float = 0.15) -> int:
    """A recognizable hot function the profiler should attribute."""
    import time

    total = 0
    deadline = time.process_time() + seconds
    while time.process_time() < deadline:
        total += sum(range(200))
    return total


class TestSamplingProfiler:
    def test_samples_attribute_cpu_to_the_hot_function(self):
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            burn_cpu()
        assert profiler.samples > 0
        report = profiler.report()
        assert "burn_cpu" in report
        assert "self%" in report or "%" in report

    def test_as_dict_is_json_ready(self):
        import json

        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            burn_cpu(0.05)
        payload = profiler.as_dict()
        assert payload["samples"] == profiler.samples
        assert payload["interval_seconds"] == 0.002
        assert all(isinstance(key, str) for key in payload["self"])
        json.dumps(payload)  # JSON-ready, no exotic keys or values

    def test_stop_is_idempotent_and_restores_the_handler(self):
        import signal

        before = signal.getsignal(signal.SIGPROF)
        profiler = SamplingProfiler(interval=0.002)
        profiler.start()
        profiler.stop()
        profiler.stop()
        assert signal.getsignal(signal.SIGPROF) == before

    def test_start_off_the_main_thread_is_rejected(self):
        caught = []

        def worker():
            try:
                SamplingProfiler().start()
            except ObservabilityError as error:
                caught.append(error)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert caught and "main thread" in str(caught[0])

    def test_interval_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            SamplingProfiler(interval=0.0)
