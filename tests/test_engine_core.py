"""Unit tests for the engine's building blocks.

Covers the event loop (determinism, monotone clock), the HIT lifecycle
state machine (legal/illegal transitions, re-posting), the retry policy
(backoff schedule, attempt budget), the fault profiles (validation,
order-independent fates, spam hijack), and the budget guard (billing
inversion, repost surcharge).
"""

import pytest

from repro.crowd.aggregate import VoteOutcome
from repro.engine import (
    FAULT_PROFILES,
    AssignmentFate,
    BudgetGuard,
    EventLoop,
    FaultProfile,
    HIT,
    HITStatus,
    RETRYABLE_STATES,
    RetryPolicy,
    TERMINAL_STATES,
    TRANSITIONS,
    Telemetry,
    resolve_profile,
)
from repro.exceptions import ConfigurationError, EngineError


class TestEventLoop:
    def test_clock_starts_at_zero_and_advances_to_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(10.0, fired.append, "a")
        loop.schedule(5.0, fired.append, "b")
        assert loop.now == 0.0
        loop.run_until_idle()
        assert fired == ["b", "a"]
        assert loop.now == 10.0

    def test_ties_fire_in_scheduling_order(self):
        loop = EventLoop()
        fired = []
        for label in "abcde":
            loop.schedule(7.0, fired.append, label)
        loop.run_until_idle()
        assert fired == list("abcde")

    def test_cancelled_events_do_not_fire_or_count(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, fired.append, "x")
        loop.schedule(2.0, fired.append, "y")
        event.cancel()
        assert len(loop) == 1
        loop.run_until_idle()
        assert fired == ["y"]

    def test_schedule_in_past_rejected(self):
        loop = EventLoop(start=100.0)
        with pytest.raises(EngineError):
            loop.schedule(-1.0, lambda: None)
        with pytest.raises(EngineError):
            loop.schedule_at(99.0, lambda: None)

    def test_events_may_schedule_further_events(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.schedule(1.0, chain, n + 1)

        loop.schedule(0.0, chain, 0)
        loop.run_until_idle()
        assert fired == [0, 1, 2, 3]
        assert loop.now == 3.0

    def test_run_until_predicate(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.schedule(float(i), fired.append, i)
        loop.run_until(lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]
        assert len(loop) == 2

    def test_run_until_raises_when_drained(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        with pytest.raises(EngineError):
            loop.run_until(lambda: False)

    def test_advance_refuses_to_jump_pending_events(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        with pytest.raises(EngineError):
            loop.advance(10.0)
        loop.run_until_idle()
        assert loop.advance(10.0) == 15.0

    def test_clock_never_runs_backwards(self):
        loop = EventLoop()
        times = []
        loop.schedule(3.0, lambda: times.append(loop.now))
        loop.schedule(3.0, lambda: times.append(loop.now))
        loop.schedule(8.0, lambda: times.append(loop.now))
        loop.run_until_idle()
        assert times == sorted(times)


class TestHITStateMachine:
    def test_happy_path(self):
        hit = HIT(pair=(0, 1), unit=0, posted_at=0.0)
        assert hit.status is HITStatus.POSTED and not hit.terminal
        hit.assign(10.0, worker_slot=3)
        assert hit.status is HITStatus.ASSIGNED
        assert hit.assigned_at == 10.0 and hit.worker_slot == 3
        hit.answer(40.0)
        assert hit.status is HITStatus.ANSWERED
        assert hit.terminal and not hit.retryable
        assert hit.finished_at == 40.0

    def test_expire_from_posted(self):
        hit = HIT(pair=(0, 1), unit=0)
        hit.expire(600.0)
        assert hit.status is HITStatus.EXPIRED
        assert hit.terminal and hit.retryable

    def test_abandon_from_assigned(self):
        hit = HIT(pair=(0, 1), unit=0)
        hit.assign(1.0, worker_slot=0)
        hit.abandon(5.0)
        assert hit.status is HITStatus.ABANDONED
        assert hit.retryable

    @pytest.mark.parametrize(
        "setup, action",
        [
            (lambda h: None, "answer"),  # POSTED -> ANSWERED illegal
            (lambda h: None, "abandon"),  # POSTED -> ABANDONED illegal
            (lambda h: h.assign(0.0, 0), "expire"),  # ASSIGNED -> EXPIRED illegal
            (lambda h: (h.assign(0.0, 0), h.answer(1.0)), "abandon"),
            (lambda h: h.expire(1.0), "assign"),
        ],
    )
    def test_illegal_transitions_raise(self, setup, action):
        hit = HIT(pair=(0, 1), unit=0)
        setup(hit)
        with pytest.raises(EngineError):
            if action == "assign":
                hit.assign(2.0, 0)
            else:
                getattr(hit, action)(2.0)

    def test_transition_table_consistency(self):
        assert TERMINAL_STATES == {
            state for state, targets in TRANSITIONS.items() if not targets
        }
        assert RETRYABLE_STATES < TERMINAL_STATES
        assert HITStatus.ANSWERED not in RETRYABLE_STATES

    def test_repost_increments_attempt(self):
        hit = HIT(pair=(2, 5), unit=3, attempt=1)
        hit.expire(600.0)
        fresh = hit.repost(660.0)
        assert fresh.pair == (2, 5) and fresh.unit == 3
        assert fresh.attempt == 2
        assert fresh.status is HITStatus.POSTED
        assert fresh.posted_at == 660.0

    def test_repost_of_answered_hit_rejected(self):
        hit = HIT(pair=(0, 1), unit=0)
        hit.assign(0.0, 0)
        hit.answer(1.0)
        with pytest.raises(EngineError):
            hit.repost(2.0)


class TestRetryPolicy:
    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.can_retry(1) and policy.can_retry(2)
        assert not policy.can_retry(3)

    def test_max_attempts_one_disables_retry(self):
        assert not RetryPolicy(max_attempts=1).can_retry(1)

    def test_backoff_grows_geometrically_and_caps(self):
        policy = RetryPolicy(
            backoff_base_seconds=60.0, backoff_factor=2.0, backoff_max_seconds=200.0
        )
        assert policy.backoff_seconds(1) == 60.0
        assert policy.backoff_seconds(2) == 120.0
        assert policy.backoff_seconds(3) == 200.0  # capped, not 240
        assert policy.backoff_seconds(10) == 200.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(assign_timeout_seconds=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_seconds=100.0, backoff_max_seconds=50.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=2).backoff_seconds(0)


class TestFaultProfiles:
    def test_registry_profiles_valid(self):
        assert FAULT_PROFILES["none"].fault_free
        assert not FAULT_PROFILES["flaky"].fault_free
        assert FAULT_PROFILES["hostile"].no_show_rate > FAULT_PROFILES["flaky"].no_show_rate

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            FaultProfile(no_show_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultProfile(abandon_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultProfile(straggler_multiplier=0.5)

    def test_fault_free_fate_is_clean(self):
        fate = FaultProfile().fate(seed=0, pair=(0, 1), unit=0, attempt=1)
        assert fate == AssignmentFate()
        assert not fate.no_show and not fate.abandon and fate.service_scale == 1.0

    def test_fates_are_deterministic_and_order_independent(self):
        profile = FAULT_PROFILES["hostile"]
        keys = [((a, b), u, t) for a in range(3) for b in range(3, 5)
                for u in range(3) for t in (1, 2)]
        forward = [profile.fate(7, pair, unit, attempt) for pair, unit, attempt in keys]
        backward = [
            profile.fate(7, pair, unit, attempt)
            for pair, unit, attempt in reversed(keys)
        ]
        assert forward == list(reversed(backward))

    def test_fates_vary_with_seed_and_attempt(self):
        profile = FAULT_PROFILES["hostile"]
        fates_a = [profile.fate(1, (0, 1), u, 1) for u in range(50)]
        fates_b = [profile.fate(2, (0, 1), u, 1) for u in range(50)]
        assert fates_a != fates_b
        # A retry is a fresh draw: the same unit can succeed on attempt 2.
        attempts = {profile.fate(1, (0, 1), 0, t).no_show for t in range(1, 20)}
        assert attempts == {True, False}

    def test_scaled_profile_rates(self):
        profile = FaultProfile.scaled(0.3)
        assert profile.no_show_rate == pytest.approx(0.3)
        assert profile.abandon_rate == pytest.approx(0.15)
        assert profile.spammer_burst_rate == pytest.approx(0.1)
        assert FaultProfile.scaled(0.0).fault_free

    def test_empirical_no_show_rate(self):
        profile = FaultProfile(no_show_rate=0.25)
        n = 2000
        hits = sum(
            profile.fate(0, (i, i + 1), 0, 1).no_show for i in range(0, 2 * n, 2)
        )
        assert hits / n == pytest.approx(0.25, abs=0.03)

    def test_straggler_scale_mean(self):
        profile = FaultProfile(straggler_rate=1.0, straggler_multiplier=4.0)
        n = 4000
        scales = [
            profile.fate(0, (i, i + 1), 0, 1).service_scale
            for i in range(0, 2 * n, 2)
        ]
        assert all(s >= 1.0 for s in scales)
        assert sum(scales) / n == pytest.approx(4.0, rel=0.1)

    def test_spam_outcome_identity_when_not_hijacked(self):
        outcome = VoteOutcome(answer=True, confidence=0.9, votes=(True,) * 5)
        clean = FaultProfile()  # rate 0: identity, same object
        assert clean.spam_outcome(0, (0, 1), outcome) is outcome

    def test_spam_hijack_is_idempotent_and_low_confidence(self):
        profile = FaultProfile(spammer_burst_rate=1.0)
        outcome = VoteOutcome(answer=True, confidence=1.0, votes=(True,) * 5)
        first = profile.spam_outcome(3, (0, 1), outcome)
        second = profile.spam_outcome(3, (0, 1), outcome)
        assert first is not outcome
        assert first == second  # replaying on resume gives the same hijack
        assert 0.5 <= first.confidence <= 0.7
        assert len(first.votes) == 5

    def test_resolve_profile_forms(self):
        assert resolve_profile("flaky") is FAULT_PROFILES["flaky"]
        assert resolve_profile(FAULT_PROFILES["hostile"]).name == "hostile"
        scaled = resolve_profile("scaled:0.2")
        assert scaled.no_show_rate == pytest.approx(0.2)
        with pytest.raises(ConfigurationError):
            resolve_profile("bogus")
        with pytest.raises(ConfigurationError):
            resolve_profile("scaled:abc")


class TestBudgetGuard:
    def test_unlimited_guard_allows_everything(self):
        guard = BudgetGuard()
        assert guard.unlimited
        assert guard.affordable_questions(0, 10_000, 10, 10, 5) == 10_000
        assert guard.can_afford_repost(1.0, 1e9)

    def test_question_cap(self):
        guard = BudgetGuard(max_questions=30)
        assert guard.affordable_questions(25, 10, 10, 10, 5) == 5
        assert guard.affordable_questions(30, 10, 10, 10, 5) == 0
        assert guard.affordable_questions(40, 10, 10, 10, 5) == 0

    def test_cents_cap_inverts_billing(self):
        # 10 pairs/HIT, 10c/HIT, z=5 -> 50c per 10 questions.
        guard = BudgetGuard(max_cents=100)
        assert guard.affordable_questions(0, 100, 10, 10, 5) == 20
        assert guard.affordable_questions(15, 100, 10, 10, 5) == 5
        assert guard.affordable_questions(20, 100, 10, 10, 5) == 0

    def test_repost_surcharge_shrinks_question_budget(self):
        guard = BudgetGuard(max_cents=100)
        guard.charge_repost(50.0)
        # Only one HIT-bundle (50c) of headroom remains.
        assert guard.affordable_questions(0, 100, 10, 10, 5) == 10

    def test_can_afford_repost_counts_everything(self):
        guard = BudgetGuard(max_cents=100)
        assert guard.can_afford_repost(1.0, billed_cents=99)
        assert not guard.can_afford_repost(2.0, billed_cents=99)
        guard.charge_repost(1.0)
        assert not guard.can_afford_repost(1.0, billed_cents=99)

    def test_zero_budget_means_machine_only(self):
        guard = BudgetGuard(max_cents=0)
        assert guard.affordable_questions(0, 50, 10, 10, 5) == 0
        assert not guard.can_afford_repost(0.5, 0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BudgetGuard(max_cents=-1)
        with pytest.raises(ConfigurationError):
            BudgetGuard(max_questions=-1)
        with pytest.raises(ConfigurationError):
            BudgetGuard().charge_repost(-0.5)


class TestTelemetry:
    def test_event_window_is_bounded(self):
        telemetry = Telemetry(event_log_limit=3)
        for i in range(10):
            telemetry.record_event("expired", float(i), pair=[0, 1])
        events = telemetry.events
        assert len(events) == 3
        assert [e["clock"] for e in events] == [7.0, 8.0, 9.0]

    def test_as_dict_and_write(self, tmp_path):
        telemetry = Telemetry()
        telemetry.posted = 12
        telemetry.re_posts = 2
        telemetry.wall_clock_seconds = 42.5
        telemetry.billed_cents = 50
        telemetry.repost_cents = 1.5
        payload = telemetry.as_dict()
        assert payload["counters"]["posted"] == 12
        assert payload["wall_clock_seconds"] == 42.5
        assert telemetry.total_spent_cents == pytest.approx(51.5)
        out = tmp_path / "telemetry.json"
        telemetry.write(out)
        import json

        assert json.loads(out.read_text())["counters"]["re_posts"] == 2
        assert "summary" not in payload  # summary() is the human view
        assert "re-posts=2" in telemetry.summary()
