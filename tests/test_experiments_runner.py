"""Tests for the experiment runner and reporting helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    METHODS,
    MethodRow,
    average_rows,
    compare_methods,
    format_table,
    make_crowd,
    prepare,
    run_method,
)
from repro.experiments.reporting import emit


class TestPrepare:
    def test_workload_shape(self):
        workload = prepare("restaurant")
        assert len(workload.pairs) == len(workload.truth)
        assert workload.vectors.shape == (len(workload.pairs), 4)
        assert workload.scores.shape == (len(workload.pairs),)

    def test_caching_returns_same_object(self):
        assert prepare("restaurant") is prepare("restaurant")

    def test_max_pairs_keeps_most_similar(self):
        full = prepare("restaurant")
        capped = prepare("restaurant", max_pairs=100)
        assert len(capped.pairs) == 100
        assert capped.scores.min() >= np.sort(full.scores)[-100] - 1e-12

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            prepare("imaginary")

    def test_similarity_variant_changes_vectors(self):
        bigram = prepare("restaurant")
        edit = prepare("restaurant", similarity="edit")
        assert not np.allclose(bigram.vectors, edit.vectors)


class TestMakeCrowd:
    def test_modes(self):
        workload = prepare("restaurant", max_pairs=50)
        sim = make_crowd(workload, "90", 0, mode="simulation")
        real = make_crowd(workload, "90", 0, mode="real")
        assert sim.difficulty is None
        assert real.difficulty is not None

    def test_invalid_mode(self):
        workload = prepare("restaurant", max_pairs=50)
        with pytest.raises(ConfigurationError):
            make_crowd(workload, "90", 0, mode="magic")


class TestRunMethod:
    @pytest.fixture(scope="class")
    def workload(self):
        return prepare("restaurant", max_pairs=300)

    @pytest.mark.parametrize("method", METHODS)
    def test_every_method_runs(self, workload, method):
        crowd = make_crowd(workload, "90", 0)
        row = run_method(method, workload, crowd, seed=0)
        assert row.method == method
        assert 0.0 <= row.f_measure <= 1.0
        assert row.questions > 0

    def test_unknown_method(self, workload):
        crowd = make_crowd(workload, "90", 0)
        with pytest.raises(ConfigurationError):
            run_method("magic", workload, crowd)

    def test_gcer_budget_forwarded(self, workload):
        crowd = make_crowd(workload, "90", 0)
        row = run_method("gcer", workload, crowd, gcer_budget=5)
        assert row.questions <= 5


class TestCompareMethods:
    def test_gcer_budget_tied_to_acd(self):
        workload = prepare("restaurant", max_pairs=300)
        rows = compare_methods(workload, "90", 0, methods=("acd", "gcer"))
        by = {row.method: row for row in rows}
        assert by["gcer"].questions <= by["acd"].questions

    def test_row_order_follows_request(self):
        workload = prepare("restaurant", max_pairs=300)
        rows = compare_methods(workload, "90", 0, methods=("gcer", "power"))
        assert [row.method for row in rows] == ["gcer", "power"]


class TestAverageRows:
    def make(self, f1, questions):
        return MethodRow(
            method="power", dataset="d", band="90", seed=0,
            f_measure=f1, precision=f1, recall=f1,
            questions=questions, iterations=3, cost_cents=10,
            assignment_time=0.1,
        )

    def test_averages(self):
        merged = average_rows([self.make(0.8, 100), self.make(0.6, 200)])
        assert merged.f_measure == pytest.approx(0.7)
        assert merged.questions == 150

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            average_rows([])


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "2.500" in text and "0.125" in text

    def test_format_table_no_rows(self):
        text = format_table("Empty", ["col"], [])
        assert "col" in text

    def test_emit_appends_to_file(self, tmp_path, capsys):
        path = tmp_path / "out.txt"
        emit("One", ["x"], [[1]], save_to=path)
        emit("Two", ["x"], [[2]], save_to=path)
        content = path.read_text()
        assert "== One ==" in content and "== Two ==" in content
        assert "== One ==" in capsys.readouterr().out
