"""Tests for the command-line interface."""

import functools
import inspect

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, experiments_help, main
from repro.data import Table, load_csv, save_csv


@pytest.fixture()
def small_csv(tmp_path, small_table):
    path = tmp_path / "small.csv"
    save_csv(small_table, path)
    return path


class TestGenerate:
    def test_generate_restaurant(self, tmp_path, capsys):
        output = tmp_path / "r.csv"
        assert main(["generate", "restaurant", str(output), "--seed", "2"]) == 0
        table = load_csv(output)
        assert len(table) == 858
        assert "wrote 858 records" in capsys.readouterr().out

    def test_generate_acmpub_scaled(self, tmp_path):
        output = tmp_path / "a.csv"
        assert main(["generate", "acmpub", str(output), "--scale", "0.01"]) == 0
        assert len(load_csv(output)) == round(66_879 * 0.01)

    def test_scale_rejected_for_restaurant(self, tmp_path, capsys):
        output = tmp_path / "r.csv"
        code = main(["generate", "restaurant", str(output), "--scale", "0.5"])
        assert code == 2
        assert "--scale" in capsys.readouterr().err


class TestStats:
    def test_stats_reports_shape(self, small_csv, capsys):
        assert main(["stats", str(small_csv)]) == 0
        out = capsys.readouterr().out
        assert "records   : 60" in out
        assert "candidate pairs" in out
        assert "partial order" in out


class TestResolve:
    def test_resolve_end_to_end(self, small_csv, tmp_path, capsys):
        output = tmp_path / "clusters.csv"
        code = main(
            ["resolve", str(small_csv), "--band", "90", "--seed", "1",
             "--output", str(output)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "questions" in out and "quality" in out
        rows = output.read_text().strip().splitlines()
        assert len(rows) == 61  # header + 60 records
        assert rows[0].endswith("cluster_id")

    def test_resolve_with_budget(self, small_csv, capsys):
        code = main(
            ["resolve", str(small_csv), "--budget", "10", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        questions = int(out.split("questions :")[1].splitlines()[0])
        assert questions <= 10

    def test_resolve_needs_ground_truth(self, tmp_path, capsys):
        table = Table.from_rows("t", ("a",), [("x",), ("y",)])
        path = tmp_path / "no_truth.csv"
        save_csv(table, path)
        assert main(["resolve", str(path)]) == 2
        assert "entity_id" in capsys.readouterr().err

    def test_resolve_no_error_tolerant(self, small_csv):
        assert main(
            ["resolve", str(small_csv), "--no-error-tolerant", "--seed", "2"]
        ) == 0


class TestExperiment:
    def test_table2_runs(self, tmp_path, capsys):
        save_to = tmp_path / "t2.txt"
        assert main(["experiment", "table2", "--save-to", str(save_to)]) == 0
        assert "Table 2" in capsys.readouterr().out
        assert save_to.exists()

    def test_registry_covers_all_figures(self):
        names = set(EXPERIMENTS)
        for required in ("table2", "table3", "fig09-11", "fig12-14", "fig15-17",
                         "fig20", "fig21-22", "fig23-24", "fig25-26",
                         "fig27-30", "fig31-33", "fig34", "extension-faults"):
            assert required in names

    def test_every_registered_experiment_is_callable_with_defaults(self):
        """The drift guard: a registry entry must be a callable whose every
        remaining parameter has a default (the experiment runner calls it
        as ``harness(save_to=...)``), partial-aware."""
        for name, harness in EXPERIMENTS.items():
            target = (
                harness.func if isinstance(harness, functools.partial) else harness
            )
            assert callable(target), name
            # signature() of a partial already discounts the bound arguments.
            signature = inspect.signature(harness)
            for param in signature.parameters.values():
                if param.kind in (
                    inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD
                ):
                    continue
                assert param.default is not inspect.Parameter.empty, (
                    f"{name}: parameter {param.name!r} has no default"
                )
            assert "save_to" in signature.parameters, name

    def test_help_text_generated_from_registry(self):
        """Help lines come from the harness docstrings, so the help can
        never drift from the registry contents."""
        text = experiments_help()
        for name, harness in EXPERIMENTS.items():
            assert name in text
            target = (
                harness.func if isinstance(harness, functools.partial) else harness
            )
            summary = (target.__doc__ or "").strip().splitlines()[0]
            assert summary  # every harness documents itself
            assert summary in text


class TestSimulate:
    def test_simulate_end_to_end_with_faults(self, tmp_path, capsys):
        code = main([
            "simulate", "--dataset", "restaurant", "--fault-profile", "flaky",
            "--method", "power", "--seed", "3", "--out-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault profile  : flaky" in out
        assert "re-posts" in out
        journal = tmp_path / "SIM_restaurant_flaky.journal.jsonl"
        assert journal.exists()
        telemetry_file = journal.with_suffix(".telemetry.json")
        assert telemetry_file.exists()
        import json

        telemetry = json.loads(telemetry_file.read_text())
        assert telemetry["counters"]["answered_pairs"] > 0
        assert telemetry["wall_clock_seconds"] > 0

    def test_simulate_fault_free_matches_closed_form(self, tmp_path, capsys):
        code = main([
            "simulate", "--dataset", "restaurant", "--fault-profile", "none",
            "--method", "power", "--seed", "1", "--out-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        # Fault-free: the simulated clock and the closed form agree, so the
        # same number is printed twice on the wall-clock line.
        line = next(l for l in out.splitlines() if l.startswith("wall clock"))
        minutes = [tok for tok in line.split() if tok.replace(".", "").isdigit()]
        assert len(minutes) == 2 and minutes[0] == minutes[1]

    def test_simulate_scaled_profile_and_budget(self, tmp_path, capsys):
        code = main([
            "simulate", "--dataset", "restaurant", "--fault-profile", "scaled:0.1",
            "--method", "power", "--seed", "2", "--budget-cents", "300",
            "--out-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        billed = float(out.split("billed         :")[1].split("USD")[0])
        assert billed <= 3.0
        assert (tmp_path / "SIM_restaurant_scaled-0.1.journal.jsonl").exists()

    def test_simulate_unknown_profile_rejected(self, tmp_path, capsys):
        code = main([
            "simulate", "--dataset", "restaurant",
            "--fault-profile", "bogus", "--out-dir", str(tmp_path),
        ])
        assert code == 1
        assert "unknown fault profile" in capsys.readouterr().err
