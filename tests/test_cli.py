"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, main
from repro.data import Table, load_csv, save_csv


@pytest.fixture()
def small_csv(tmp_path, small_table):
    path = tmp_path / "small.csv"
    save_csv(small_table, path)
    return path


class TestGenerate:
    def test_generate_restaurant(self, tmp_path, capsys):
        output = tmp_path / "r.csv"
        assert main(["generate", "restaurant", str(output), "--seed", "2"]) == 0
        table = load_csv(output)
        assert len(table) == 858
        assert "wrote 858 records" in capsys.readouterr().out

    def test_generate_acmpub_scaled(self, tmp_path):
        output = tmp_path / "a.csv"
        assert main(["generate", "acmpub", str(output), "--scale", "0.01"]) == 0
        assert len(load_csv(output)) == round(66_879 * 0.01)

    def test_scale_rejected_for_restaurant(self, tmp_path, capsys):
        output = tmp_path / "r.csv"
        code = main(["generate", "restaurant", str(output), "--scale", "0.5"])
        assert code == 2
        assert "--scale" in capsys.readouterr().err


class TestStats:
    def test_stats_reports_shape(self, small_csv, capsys):
        assert main(["stats", str(small_csv)]) == 0
        out = capsys.readouterr().out
        assert "records   : 60" in out
        assert "candidate pairs" in out
        assert "partial order" in out


class TestResolve:
    def test_resolve_end_to_end(self, small_csv, tmp_path, capsys):
        output = tmp_path / "clusters.csv"
        code = main(
            ["resolve", str(small_csv), "--band", "90", "--seed", "1",
             "--output", str(output)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "questions" in out and "quality" in out
        rows = output.read_text().strip().splitlines()
        assert len(rows) == 61  # header + 60 records
        assert rows[0].endswith("cluster_id")

    def test_resolve_with_budget(self, small_csv, capsys):
        code = main(
            ["resolve", str(small_csv), "--budget", "10", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        questions = int(out.split("questions :")[1].splitlines()[0])
        assert questions <= 10

    def test_resolve_needs_ground_truth(self, tmp_path, capsys):
        table = Table.from_rows("t", ("a",), [("x",), ("y",)])
        path = tmp_path / "no_truth.csv"
        save_csv(table, path)
        assert main(["resolve", str(path)]) == 2
        assert "entity_id" in capsys.readouterr().err

    def test_resolve_no_error_tolerant(self, small_csv):
        assert main(
            ["resolve", str(small_csv), "--no-error-tolerant", "--seed", "2"]
        ) == 0


class TestExperiment:
    def test_table2_runs(self, tmp_path, capsys):
        save_to = tmp_path / "t2.txt"
        assert main(["experiment", "table2", "--save-to", str(save_to)]) == 0
        assert "Table 2" in capsys.readouterr().out
        assert save_to.exists()

    def test_registry_covers_all_figures(self):
        names = set(EXPERIMENTS)
        for required in ("table2", "table3", "fig09-11", "fig12-14", "fig15-17",
                         "fig20", "fig21-22", "fig23-24", "fig25-26",
                         "fig27-30", "fig31-33", "fig34"):
            assert required in names
