"""Tests for Eq. 7 weights, Eq. 8 similarities, and match histograms (§6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.selection import attribute_weights, build_histogram, weighted_similarities


class TestAttributeWeights:
    def test_weights_sum_to_one(self):
        green = np.array([[0.9, 0.1], [0.8, 0.2]])
        weights = attribute_weights(green, 2)
        assert weights.sum() == pytest.approx(1.0)

    def test_heavier_attribute_gets_more_weight(self):
        green = np.array([[0.9, 0.1], [0.8, 0.2]])
        weights = attribute_weights(green, 2)
        assert weights[0] > weights[1]

    def test_no_green_pairs_uniform(self):
        weights = attribute_weights(np.empty((0, 3)), 3)
        assert np.allclose(weights, [1 / 3] * 3)

    def test_zero_mass_uniform(self):
        weights = attribute_weights(np.zeros((4, 2)), 2)
        assert np.allclose(weights, [0.5, 0.5])

    @settings(max_examples=30)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=9999),
    )
    def test_weights_nonnegative_and_normalised(self, m, n, seed):
        rng = np.random.default_rng(seed)
        weights = attribute_weights(rng.random((n, m)), m)
        assert np.all(weights >= 0)
        assert weights.sum() == pytest.approx(1.0)


class TestWeightedSimilarities:
    def test_linear_combination(self):
        vectors = np.array([[1.0, 0.0], [0.5, 0.5]])
        s_hat = weighted_similarities(vectors, np.array([0.75, 0.25]))
        assert s_hat[0] == pytest.approx(0.75)
        assert s_hat[1] == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            weighted_similarities(np.ones((2, 3)), np.ones(2))


class TestHistogram:
    def test_appendix_c_equi_width_example(self):
        """Five width-0.2 bins; h4 = [0.6, 0.8) has Pr = 1; 0.72 -> GREEN."""
        values = np.array([0.97, 0.98, 0.68, 0.60, 0.43, 0.42, 0.41, 0.44, 0.44, 0.40,
                           0.21, 0.37, 0.39, 0.39, 0.28, 0.29])
        labels = np.array([True, True, True, True, True, True, True, True, False, False,
                           False, False, False, False, False, False])
        histogram = build_histogram(values, labels, num_bins=5, binning="equi-width")
        assert histogram.probability(0.72) == pytest.approx(1.0)
        assert histogram.classify(0.72) is True
        assert histogram.classify(0.28) is False

    def test_bin_boundary_semantics(self):
        """[lo, hi) bins: 0.8 belongs to the top bin, not [0.6, 0.8)."""
        values = np.array([0.7, 0.9])
        labels = np.array([False, True])
        histogram = build_histogram(values, labels, num_bins=5, binning="equi-width")
        assert histogram.probability(0.8) == pytest.approx(1.0)
        assert histogram.probability(0.79) == pytest.approx(0.0)

    def test_equi_depth_balances_counts(self):
        values = np.concatenate([np.linspace(0, 0.1, 50), np.linspace(0.9, 1.0, 50)])
        labels = values > 0.5
        histogram = build_histogram(values, labels, num_bins=4, binning="equi-depth")
        assert histogram.counts.sum() == 100
        assert histogram.classify(0.95) is True
        assert histogram.classify(0.05) is False

    def test_empty_bins_inherit_neighbours(self):
        values = np.array([0.05, 0.95])
        labels = np.array([False, True])
        histogram = build_histogram(values, labels, num_bins=10, binning="equi-width")
        assert histogram.probability(0.2) == pytest.approx(0.0)  # near the red
        assert histogram.probability(0.85) == pytest.approx(1.0)  # near the green

    def test_no_training_data_gives_half(self):
        histogram = build_histogram(np.array([]), np.array([], dtype=bool))
        assert histogram.probability(0.5) == pytest.approx(0.5)
        assert histogram.classify(0.5) is False  # 0.5 is not > 0.5

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            build_histogram(np.array([0.5]), np.array([True, False]))
        with pytest.raises(ConfigurationError):
            build_histogram(np.array([0.5]), np.array([True]), num_bins=0)
        with pytest.raises(ConfigurationError):
            build_histogram(np.array([0.5]), np.array([True]), binning="magic")

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=9999),
           st.sampled_from(["equi-depth", "equi-width"]))
    def test_probabilities_in_unit_interval(self, n, seed, binning):
        rng = np.random.default_rng(seed)
        values = rng.random(n)
        labels = rng.random(n) < 0.5
        histogram = build_histogram(values, labels, num_bins=7, binning=binning)
        assert np.all(histogram.probabilities >= 0)
        assert np.all(histogram.probabilities <= 1)
