"""Small cross-cutting tests: exceptions, vocabularies, selector knobs."""

import pytest

from repro.crowd import PerfectCrowd
from repro.data import vocab
from repro.exceptions import (
    ConfigurationError,
    CrowdError,
    DataError,
    GraphError,
    PowerError,
    SelectionError,
)
from repro.graph import PairGraph
from repro.selection import SinglePathSelector


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [ConfigurationError, DataError, GraphError, CrowdError, SelectionError],
    )
    def test_all_derive_from_power_error(self, exception):
        assert issubclass(exception, PowerError)

    def test_catch_all(self):
        with pytest.raises(PowerError):
            raise DataError("boom")


class TestVocabularies:
    @pytest.mark.parametrize(
        "name",
        [
            "RESTAURANT_NAME_HEADS", "RESTAURANT_NAME_TAILS", "STREET_NAMES",
            "STREET_SUFFIXES", "CITIES", "CUISINES", "FIRST_NAMES",
            "LAST_NAMES", "TITLE_TOPICS", "TITLE_PATTERNS", "TITLE_ADJECTIVES",
            "TITLE_CONTEXTS", "JOURNALS", "CONFERENCES", "PUBLISHERS",
            "PUBLICATION_TYPES",
        ],
    )
    def test_lists_are_nonempty_and_unique(self, name):
        words = getattr(vocab, name)
        assert len(words) > 0
        assert len(set(words)) == len(words)
        assert all(isinstance(word, str) and word for word in words)

    def test_title_patterns_format_cleanly(self):
        for pattern in vocab.TITLE_PATTERNS:
            text = pattern.format(adj="a", topic="t", context="c")
            assert "{" not in text


class TestSelectorKnobs:
    def test_single_path_invalid_cover(self):
        with pytest.raises(ValueError):
            SinglePathSelector(cover="magic")

    def test_single_path_greedy_cover_works(self, small_bundle):
        _, pairs, vectors, truth = small_bundle
        graph = PairGraph(pairs, vectors)
        result = SinglePathSelector(cover="greedy").run(
            graph, PerfectCrowd(truth).session()
        )
        assert result.state.is_complete()

    def test_run_method_selector_override(self):
        from repro.experiments import make_crowd, prepare, run_method

        workload = prepare("restaurant", max_pairs=200)
        crowd = make_crowd(workload, "90", 0)
        row = run_method("power", workload, crowd, selector="multi-path")
        assert row.questions > 0
