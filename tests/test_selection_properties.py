"""Property-based correctness tests for selection and coloring.

The central soundness property of the whole framework (§5.1): if the ground
truth is *monotone* with respect to the partial order — every pair
dominating a match is a match, every pair dominated by a non-match is a
non-match — then any selector driven by a perfect oracle must label every
pair exactly.  Monotone truths are generated as random linear threshold
functions, which are monotone by construction.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd import PerfectCrowd
from repro.graph import Color, ColoringState, GroupedGraph, PairGraph, split_grouping
from repro.selection import (
    MultiPathSelector,
    RandomSelector,
    SinglePathSelector,
    TopoSortSelector,
)

from conftest import random_vectors


def monotone_instance(seed: int, n: int, m: int):
    """Random vectors plus a monotone ground truth (linear threshold)."""
    vectors = random_vectors(seed, n, m)
    rng = np.random.default_rng(seed + 1)
    weights = rng.random(m) + 0.05
    threshold = float(np.quantile(vectors @ weights, rng.random() * 0.8 + 0.1))
    labels = vectors @ weights > threshold
    pairs = [(i, i + 10_000) for i in range(n)]
    truth = {pair: bool(label) for pair, label in zip(pairs, labels)}
    return pairs, vectors, truth


INSTANCES = st.tuples(
    st.integers(min_value=0, max_value=9999),
    st.integers(min_value=1, max_value=45),
    st.integers(min_value=1, max_value=4),
)

SELECTORS = [RandomSelector, SinglePathSelector, MultiPathSelector, TopoSortSelector]


class TestMonotoneSoundness:
    @settings(max_examples=15, deadline=None)
    @given(INSTANCES, st.sampled_from(SELECTORS))
    def test_oracle_labels_exactly(self, instance, selector_class):
        seed, n, m = instance
        pairs, vectors, truth = monotone_instance(seed, n, m)
        graph = PairGraph(pairs, vectors)
        result = selector_class(seed=seed).run(graph, PerfectCrowd(truth).session())
        assert result.labels == truth

    @settings(max_examples=10, deadline=None)
    @given(INSTANCES)
    def test_grouped_errors_bounded_by_mixed_groups(self, instance):
        """Grouping can only mislabel pairs inside truth-mixed groups."""
        seed, n, m = instance
        pairs, vectors, truth = monotone_instance(seed, n, m)
        base = PairGraph(pairs, vectors)
        grouping = split_grouping(vectors, 0.15)
        grouped = GroupedGraph(base, grouping)
        result = TopoSortSelector(seed=seed).run(
            grouped, PerfectCrowd(truth).session()
        )
        mixed_pairs = set()
        for group in grouping:
            group_truths = {truth[pairs[v]] for v in group}
            if len(group_truths) > 1:
                mixed_pairs.update(pairs[v] for v in group)
        wrong = {pair for pair, label in result.labels.items() if truth[pair] != label}
        assert wrong <= mixed_pairs

    @settings(max_examples=10, deadline=None)
    @given(INSTANCES)
    def test_questions_never_exceed_vertices(self, instance):
        seed, n, m = instance
        pairs, vectors, truth = monotone_instance(seed, n, m)
        graph = PairGraph(pairs, vectors)
        for selector_class in SELECTORS:
            result = selector_class(seed=seed).run(
                graph, PerfectCrowd(truth).session()
            )
            assert result.questions <= n


class TestColoringInvariants:
    @settings(max_examples=15, deadline=None)
    @given(INSTANCES, st.integers(min_value=0, max_value=9999))
    def test_truthful_answers_color_truthfully(self, instance, ask_seed):
        """After ANY sequence of truthful answers on a monotone instance,
        every GREEN/RED vertex agrees with the truth."""
        seed, n, m = instance
        pairs, vectors, truth = monotone_instance(seed, n, m)
        graph = PairGraph(pairs, vectors)
        state = ColoringState(graph)
        rng = np.random.default_rng(ask_seed)
        order = rng.permutation(n)
        for vertex in order[: max(1, n // 2)]:
            state.apply_answer(int(vertex), truth[pairs[int(vertex)]])
        for vertex in range(n):
            color = state.color_of(vertex)
            if color == Color.GREEN:
                assert truth[pairs[vertex]] is True
            elif color == Color.RED:
                assert truth[pairs[vertex]] is False

    @settings(max_examples=15, deadline=None)
    @given(INSTANCES, st.integers(min_value=0, max_value=9999))
    def test_asked_vertices_always_pinned(self, instance, ask_seed):
        """Crowd-answered vertices never change color afterwards."""
        seed, n, m = instance
        pairs, vectors, truth = monotone_instance(seed, n, m)
        graph = PairGraph(pairs, vectors)
        state = ColoringState(graph)
        rng = np.random.default_rng(ask_seed)
        pinned: dict[int, Color] = {}
        for vertex in rng.permutation(n)[: max(1, n // 3)]:
            vertex = int(vertex)
            answer = bool(rng.random() < 0.5)  # adversarially random answers
            state.apply_answer(vertex, answer)
            pinned[vertex] = Color.GREEN if answer else Color.RED
            for earlier, color in pinned.items():
                assert state.color_of(earlier) == color

    @settings(max_examples=10, deadline=None)
    @given(INSTANCES)
    def test_progress_guarantee(self, instance):
        """Coloring the whole graph needs at most |V| answers."""
        seed, n, m = instance
        pairs, vectors, truth = monotone_instance(seed, n, m)
        graph = PairGraph(pairs, vectors)
        state = ColoringState(graph)
        answers = 0
        while not state.is_complete():
            vertex = int(state.uncolored()[0])
            state.apply_answer(vertex, truth[pairs[vertex]])
            answers += 1
        assert answers <= n


class TestAdversarialCrowd:
    def test_always_lying_crowd_still_terminates(self, small_bundle):
        """A crowd that always answers wrong cannot hang any selector."""
        _, pairs, vectors, truth = small_bundle
        lies = {pair: not answer for pair, answer in truth.items()}
        graph = PairGraph(pairs, vectors)
        for selector_class in SELECTORS:
            result = selector_class(seed=0).run(
                graph, PerfectCrowd(lies).session()
            )
            assert result.state.is_complete()
            # Everything it asserted is exactly inverted where asked.
            assert set(result.labels) == set(truth)

    def test_contradictory_crowd_resolved_by_votes(self):
        """v0 > v1 > v2; crowd says v2 GREEN but v0 RED: the middle vertex
        is decided by majority voting, not left uncolored."""
        pairs = [(0, 1), (2, 3), (4, 5)]
        vectors = np.array([[0.9, 0.9], [0.5, 0.5], [0.1, 0.1]])
        graph = PairGraph(pairs, vectors)
        state = ColoringState(graph)
        state.apply_answer(2, True)  # votes 0, 1 green
        state.apply_answer(0, False)  # pinned red itself; votes 1, 2 red
        assert state.color_of(1) in (Color.GREEN, Color.RED)
        assert state.is_complete()


class TestComplexityBounds:
    @settings(max_examples=12, deadline=None)
    @given(INSTANCES)
    def test_single_path_question_bound(self, instance):
        """§5.2: SinglePath asks O(B log |V|) questions on monotone data —
        check the concrete bound B * (floor(log2 |V|) + 2)."""
        seed, n, m = instance
        pairs, vectors, truth = monotone_instance(seed, n, m)
        graph = PairGraph(pairs, vectors)
        from repro.graph.matching import minimum_path_cover, restricted_adjacency

        active = np.ones(n, dtype=bool)
        sub, _ = restricted_adjacency(graph.adjacency(), active)
        width = len(minimum_path_cover(sub))
        result = SinglePathSelector(seed=seed).run(
            graph, PerfectCrowd(truth).session()
        )
        bound = width * (int(np.log2(max(n, 2))) + 2)
        assert result.questions <= bound

    @settings(max_examples=12, deadline=None)
    @given(INSTANCES)
    def test_boundary_vertices_must_be_asked(self, instance):
        """§5.1: any algorithm must ask at least ... the number of GREEN
        boundary vertices with no GREEN descendants is a simple lower
        bound; SinglePath respects it."""
        seed, n, m = instance
        pairs, vectors, truth = monotone_instance(seed, n, m)
        graph = PairGraph(pairs, vectors)
        labels = np.array([truth[pair] for pair in pairs])
        # Minimal GREEN vertices: matches none of whose children is a match.
        minimal_greens = 0
        for vertex in range(n):
            if labels[vertex]:
                children = graph.descendants(vertex)
                if not np.any(labels[children]):
                    minimal_greens += 1
        # They form an antichain of boundary vertices; asking fewer total
        # questions than an antichain's size cannot color it (each answer
        # colors at most one of them... via its own vertex).
        result = SinglePathSelector(seed=seed).run(
            graph, PerfectCrowd(truth).session()
        )
        # Not a strict theorem for *our* run (inference helps), but the
        # paper's bound says boundary vertices themselves must be asked:
        # every minimal GREEN vertex must appear among the asked ones OR
        # have been... in fact with truthful answers the only way a minimal
        # GREEN vertex turns GREEN is being asked (no descendant is GREEN).
        asked = set(result.state.asked_order)
        for vertex in range(n):
            if labels[vertex]:
                children = graph.descendants(vertex)
                if not np.any(labels[children]):
                    assert vertex in asked
