"""Property tests for the metrics registry: bucketing and merge laws.

The shard coordinator folds worker registries together in completion
order; the exported numbers must not depend on that order.  Hypothesis
pins the algebra that guarantees it — merge is associative, commutative,
and has the empty registry as identity — plus the histogram bucketing
contract (every observation lands in exactly one bucket, chosen by the
documented ``v <= edge`` rule).
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ObservabilityError
from repro.obs import (
    COUNT_BOUNDARIES,
    Histogram,
    MetricsRegistry,
    SECONDS_BOUNDARIES,
)

EDGES = (0.5, 1.0, 5.0)

values = st.floats(
    min_value=-10.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)

# Merge-law sweeps use dyadic rationals (n/4): counter/histogram merges add
# floats, and float addition is only associative when every intermediate
# sum is exactly representable.  The laws are about merge *structure*, not
# IEEE rounding, so the strategy keeps arithmetic exact.
exact_values = st.integers(min_value=-40, max_value=4000).map(lambda n: n / 4)


def build_registry(spec: list[tuple[str, float]]) -> MetricsRegistry:
    """A registry from a compact ``(instrument, value)`` recipe.

    ``c:*`` counters, ``g:*`` gauges, ``h:*`` histograms — shared names
    across recipes so merged registries overlap the way shard slices do.
    """
    registry = MetricsRegistry()
    for name, value in spec:
        if name.startswith("c:"):
            registry.counter(name[2:]).inc(abs(value))
        elif name.startswith("g:"):
            registry.gauge(name[2:]).set(value)
        else:
            registry.histogram(name[2:], boundaries=EDGES).observe(value)
    return registry


recipes = st.lists(
    st.tuples(
        st.sampled_from(["c:questions", "c:rounds", "g:peak", "h:batch"]),
        exact_values,
    ),
    max_size=12,
)


class TestHistogramBucketing:
    @given(values)
    def test_every_observation_lands_in_exactly_one_bucket(self, value):
        histogram = Histogram("h", boundaries=EDGES)
        histogram.observe(value)
        assert sum(histogram.bucket_counts) == 1
        assert len(histogram.bucket_counts) == len(EDGES) + 1

    @given(values)
    def test_bucket_choice_matches_the_documented_rule(self, value):
        histogram = Histogram("h", boundaries=EDGES)
        histogram.observe(value)
        expected = next(
            (i for i, edge in enumerate(EDGES) if value <= edge), len(EDGES)
        )
        assert histogram.bucket_counts[expected] == 1

    @given(st.lists(values, min_size=1, max_size=30))
    def test_count_sum_min_max_track_the_stream(self, stream):
        histogram = Histogram("h", boundaries=EDGES)
        for value in stream:
            histogram.observe(value)
        assert histogram.count == len(stream)
        assert histogram.sum == pytest.approx(sum(stream))
        assert histogram.min == min(stream)
        assert histogram.max == max(stream)
        assert histogram.mean == pytest.approx(sum(stream) / len(stream))

    def test_boundaries_must_be_strictly_increasing(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", boundaries=(1.0, 1.0, 2.0))
        with pytest.raises(ObservabilityError):
            Histogram("h", boundaries=())

    @given(st.lists(values, max_size=20), st.lists(values, max_size=20))
    def test_merge_equals_observing_the_concatenated_stream(self, a, b):
        left, right, both = (Histogram("h", boundaries=EDGES) for _ in range(3))
        for value in a:
            left.observe(value)
        for value in b:
            right.observe(value)
        for value in a + b:
            both.observe(value)
        left.merge(right)
        assert left.bucket_counts == both.bucket_counts
        assert left.count == both.count
        assert left.sum == pytest.approx(both.sum)

    def test_merge_rejects_boundary_mismatch(self):
        left = Histogram("h", boundaries=(1.0, 2.0))
        right = Histogram("h", boundaries=(1.0, 3.0))
        with pytest.raises(ObservabilityError, match="boundary mismatch"):
            left.merge(right)


class TestMergeLaws:
    @settings(max_examples=50)
    @given(recipes, recipes)
    def test_commutative(self, a, b):
        ab = build_registry(a)
        ab.merge(build_registry(b))
        ba = build_registry(b)
        ba.merge(build_registry(a))
        assert ab.snapshot() == ba.snapshot()

    @settings(max_examples=50)
    @given(recipes, recipes, recipes)
    def test_associative(self, a, b, c):
        left = build_registry(a)
        bc = build_registry(b)
        bc.merge(build_registry(c))
        left.merge(bc)

        right = build_registry(a)
        right.merge(build_registry(b))
        right.merge(build_registry(c))
        assert left.snapshot() == right.snapshot()

    @given(recipes)
    def test_empty_registry_is_the_identity(self, a):
        merged = build_registry(a)
        merged.merge(MetricsRegistry())
        assert merged.snapshot() == build_registry(a).snapshot()

        onto_empty = MetricsRegistry()
        onto_empty.merge(build_registry(a))
        assert onto_empty.snapshot() == build_registry(a).snapshot()

    @settings(max_examples=30)
    @given(
        st.lists(recipes, min_size=2, max_size=5),
        st.randoms(use_true_random=False),
    )
    def test_shard_completion_order_cannot_show(self, shards, rng):
        """Folding worker registries in any permutation gives one snapshot."""
        in_order = MetricsRegistry()
        for shard in shards:
            in_order.merge(build_registry(shard))

        shuffled = list(shards)
        rng.shuffle(shuffled)
        out_of_order = MetricsRegistry()
        for shard in shuffled:
            out_of_order.merge(build_registry(shard))
        assert in_order.snapshot() == out_of_order.snapshot()


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.counter("c", selector="a") is not registry.counter(
            "c", selector="b"
        )

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("c")

    def test_histogram_boundary_rerequest_must_match(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=SECONDS_BOUNDARIES)
        with pytest.raises(ObservabilityError, match="different boundaries"):
            registry.histogram("h", boundaries=COUNT_BOUNDARIES)

    def test_counter_cannot_decrease(self):
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_merge_keeps_the_maximum(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.gauge("g").set(3)
        right.gauge("g").set(7)
        left.merge(right)
        assert left.gauge("g").value == 7

    def test_family_lists_label_variants_sorted(self):
        registry = MetricsRegistry()
        registry.counter("rounds", selector="single-path").inc()
        registry.counter("rounds", selector="power").inc(2)
        family = registry.family("rounds")
        assert [dict(m.labels)["selector"] for m in family] == [
            "power", "single-path",
        ]

    def test_registry_survives_pickling(self):
        """Shard workers ship their registry through the process pool."""
        registry = MetricsRegistry()
        registry.counter("c").inc(4)
        registry.histogram("h", boundaries=EDGES).observe(0.7)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()
        clone.counter("c").inc()  # the recreated lock still works
        assert clone.counter("c").value == 5
