"""Tests for the CrowdER and node-priority baselines."""

import numpy as np
import pytest

from repro.baselines import BASELINES, CrowdERResolver, NodePriorityResolver
from repro.crowd import PerfectCrowd
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def workload(small_bundle):
    _, pairs, vectors, truth = small_bundle
    return pairs, vectors.mean(axis=1), truth


class TestCrowdER:
    def test_oracle_gives_perfect_labels(self, workload):
        pairs, scores, truth = workload
        result = CrowdERResolver().run(pairs, scores, PerfectCrowd(truth).session())
        assert result.labels == truth

    def test_asks_every_candidate_pair(self, workload):
        pairs, scores, truth = workload
        result = CrowdERResolver().run(pairs, scores, PerfectCrowd(truth).session())
        assert result.questions == len(pairs)

    def test_hit_size_controls_iterations(self, workload):
        pairs, scores, truth = workload
        small = CrowdERResolver(pairs_per_hit=10).run(
            pairs, scores, PerfectCrowd(truth).session()
        )
        large = CrowdERResolver(pairs_per_hit=100).run(
            pairs, scores, PerfectCrowd(truth).session()
        )
        assert small.iterations > large.iterations
        assert small.questions == large.questions

    def test_invalid_hit_size(self):
        with pytest.raises(ConfigurationError):
            CrowdERResolver(pairs_per_hit=0)

    def test_empty_pairs(self):
        result = CrowdERResolver().run([], np.array([]), PerfectCrowd({}).session())
        assert result.labels == {}


class TestNodePriority:
    def test_oracle_gives_perfect_labels(self, workload):
        pairs, scores, truth = workload
        result = NodePriorityResolver().run(
            pairs, scores, PerfectCrowd(truth).session()
        )
        assert result.labels == truth

    def test_saves_on_clusters(self):
        """A clique of k matching records costs k-1 questions: each new
        record asks the cluster once."""
        records = [0, 1, 2, 3, 4]
        pairs = [(i, j) for i in records for j in records if i < j]
        scores = np.linspace(1.0, 0.5, len(pairs))
        truth = {pair: True for pair in pairs}
        result = NodePriorityResolver().run(
            pairs, scores, PerfectCrowd(truth).session()
        )
        assert result.questions == len(records) - 1
        assert result.labels == truth

    def test_cluster_negative_probes_bounded(self):
        """A record facing c candidate clusters asks each at most once."""
        # Records 0..3 mutually candidates, all different entities.
        pairs = [(i, j) for i in range(4) for j in range(4) if i < j]
        scores = np.linspace(1.0, 0.5, len(pairs))
        truth = {pair: False for pair in pairs}
        result = NodePriorityResolver().run(
            pairs, scores, PerfectCrowd(truth).session()
        )
        # Worst case: record k probes the k existing singleton clusters.
        assert result.questions <= 3 + 2 + 1
        assert result.labels == truth

    def test_fewer_questions_than_crowder(self, workload):
        pairs, scores, truth = workload
        node = NodePriorityResolver().run(pairs, scores, PerfectCrowd(truth).session())
        crowder = CrowdERResolver().run(pairs, scores, PerfectCrowd(truth).session())
        assert node.questions <= crowder.questions

    def test_empty_pairs(self):
        result = NodePriorityResolver().run(
            [], np.array([]), PerfectCrowd({}).session()
        )
        assert result.labels == {}


class TestRegistry:
    def test_all_five_baselines_registered(self):
        assert set(BASELINES) == {
            "trans", "acd", "gcer", "crowder", "node-priority",
        }
