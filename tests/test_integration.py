"""Cross-module integration tests: the paper's headline claims in miniature.

These run the full five-algorithm comparison on the small fixture table and
assert the qualitative results the paper reports, so a regression anywhere
in the pipeline (join, graph, selection, crowd, baselines, metrics) shows
up here even if every unit test still passes.
"""

import numpy as np
import pytest

from repro import (
    ACDResolver,
    GCERResolver,
    PowerConfig,
    PowerResolver,
    TransResolver,
)
from repro.core import pairwise_quality
from repro.crowd import PerfectCrowd, SimulatedCrowd, WorkerPool
from repro.data.ground_truth import true_match_pairs


@pytest.fixture(scope="module")
def comparison(small_table, small_bundle):
    """Run all five algorithms on shared 80%-band crowds, over three seeds.

    Yields ``{method: (mean_f1, mean_questions, mean_iterations)}``.
    """
    _, pairs, vectors, truth = small_bundle
    gold = true_match_pairs(small_table)
    scores = vectors.mean(axis=1)

    collected: dict[str, list[tuple[float, int, int]]] = {}
    for seed in (3, 4, 5):
        crowd = SimulatedCrowd(truth, WorkerPool(accuracy_range="80", seed=seed))
        for error_tolerant, name in ((False, "power"), (True, "power+")):
            resolver = PowerResolver(
                PowerConfig(error_tolerant=error_tolerant, seed=seed)
            )
            result = resolver.resolve(small_table, session=crowd.session())
            collected.setdefault(name, []).append(
                (result.quality.f_measure, result.questions, result.iterations)
            )
        for baseline in (TransResolver(), ACDResolver(seed=seed), GCERResolver()):
            result = baseline.run(pairs, scores, crowd.session())
            quality = pairwise_quality(result.matches, gold)
            collected.setdefault(result.name, []).append(
                (quality.f_measure, result.questions, result.iterations)
            )
    return {
        name: tuple(float(np.mean([run[i] for run in runs])) for i in range(3))
        for name, runs in collected.items()
    }


class TestHeadlineClaims:
    def test_power_asks_far_fewer_questions(self, comparison):
        power_q = comparison["power"][1]
        for baseline in ("trans", "acd", "gcer"):
            assert power_q * 2 < comparison[baseline][1]

    def test_power_needs_few_iterations_in_absolute_terms(self, comparison):
        # At this tiny scale the baselines also finish in a handful of
        # batches, so the paper's relative-iteration claim is asserted by
        # the full-scale benches; here we pin Power's absolute behaviour.
        assert comparison["power"][2] <= 10

    def test_power_plus_quality_competitive(self, comparison):
        plus_f1 = comparison["power+"][0]
        error_blind = np.mean([comparison["trans"][0], comparison["gcer"][0]])
        assert plus_f1 >= error_blind - 0.1

    def test_all_methods_report_valid_metrics(self, comparison):
        for name, (f_measure, questions, iterations) in comparison.items():
            assert 0.0 <= f_measure <= 1.0, name
            assert questions > 0, name
            assert iterations > 0, name


class TestSharedPlatformProtocol:
    def test_same_pair_same_answer_across_algorithms(self, small_bundle):
        """The §7.1 fairness protocol: algorithms asking the same pair must
        observe the same voted answer."""
        _, pairs, _, truth = small_bundle
        crowd = SimulatedCrowd(truth, WorkerPool(accuracy_range="70", seed=1))
        first = {pair: crowd.session().ask(pair).answer for pair in pairs[:25]}
        second = {pair: crowd.session().ask(pair).answer for pair in pairs[:25]}
        assert first == second


class TestDeterminism:
    def test_full_pipeline_deterministic(self, small_table):
        results = [
            PowerResolver(PowerConfig(seed=9)).resolve(small_table, worker_band="80")
            for _ in range(2)
        ]
        assert results[0].matches == results[1].matches
        assert results[0].questions == results[1].questions
        assert results[0].iterations == results[1].iterations

    def test_seed_changes_crowd_not_structure(self, small_table):
        a = PowerResolver(PowerConfig(seed=1)).resolve(small_table, worker_band="90")
        b = PowerResolver(PowerConfig(seed=2)).resolve(small_table, worker_band="90")
        # Candidate pairs derive from data only, not the seed.
        assert a.candidate_pairs == b.candidate_pairs


class TestOracleEndToEnd:
    def test_oracle_no_grouping_perfect_on_clean_order(self, paper):
        """On the paper example (no partial-order violations), the whole
        pipeline with an oracle crowd recovers the exact truth."""
        from repro.data.ground_truth import pair_truth

        table, _, _, _ = paper
        config = PowerConfig(
            similarity=("edit", "jaccard", "jaccard", "edit"),
            epsilon=None,
            error_tolerant=False,
            seed=0,
        )
        resolver = PowerResolver(config)
        # The resolver's own pruning step decides the candidate universe;
        # the oracle must cover exactly that.
        candidates = resolver.candidate_pairs(table)
        truth = pair_truth(table, candidates)
        result = resolver.resolve(table, session=PerfectCrowd(truth).session())
        assert result.quality.precision == 1.0
        assert result.quality.recall == 1.0
