"""Tests for budget-capped selector runs (the anytime extension)."""

import numpy as np
import pytest

from repro.crowd import PerfectCrowd
from repro.exceptions import SelectionError
from repro.graph import PairGraph
from repro.selection import TopoSortSelector


@pytest.fixture()
def setup(small_bundle):
    _, pairs, vectors, truth = small_bundle
    return PairGraph(pairs, vectors), truth


class TestBudgetedRun:
    def test_budget_respected(self, setup):
        graph, truth = setup
        session = PerfectCrowd(truth).session()
        result = TopoSortSelector().run(graph, session, budget=5)
        assert result.questions <= 5

    def test_all_pairs_still_labeled(self, setup):
        graph, truth = setup
        session = PerfectCrowd(truth).session()
        result = TopoSortSelector().run(graph, session, budget=5)
        assert set(result.labels) == set(truth)

    def test_zero_budget_pure_histogram(self, setup):
        graph, truth = setup
        session = PerfectCrowd(truth).session()
        result = TopoSortSelector().run(graph, session, budget=0)
        assert result.questions == 0
        assert set(result.labels) == set(truth)

    def test_quality_increases_with_budget(self, setup):
        """The anytime property: more budget never hurts much, and the
        full run is at least as good as the zero-budget histogram guess."""
        graph, truth = setup

        def accuracy(budget):
            session = PerfectCrowd(truth).session()
            result = TopoSortSelector().run(graph, session, budget=budget)
            return np.mean([truth[p] == v for p, v in result.labels.items()])

        assert accuracy(None) >= accuracy(10) - 0.05
        assert accuracy(10) >= accuracy(0) - 0.05

    def test_unlimited_budget_equals_default(self, setup):
        graph, truth = setup
        a = TopoSortSelector().run(graph, PerfectCrowd(truth).session())
        b = TopoSortSelector().run(graph, PerfectCrowd(truth).session(), budget=None)
        assert a.labels == b.labels
        assert a.questions == b.questions

    def test_negative_budget_rejected(self, setup):
        graph, truth = setup
        with pytest.raises(SelectionError):
            TopoSortSelector().run(graph, PerfectCrowd(truth).session(), budget=-1)
