"""The batch substrate's contract: fast paths ≡ scalar references, exactly.

Property tests (hypothesis) pin the three equivalences the pipeline relies
on:

* :func:`batch_similarity_matrix` is *bit-identical* to
  :func:`similarity_matrix` on random string tables, for every similarity
  function;
* the blocked dominance kernel produces exactly the reference edge set /
  adjacency lists on random vector matrices;
* :func:`sparse_jaccard_join` returns exactly the naive quadratic join's
  pairs across thresholds.

Plus direct unit tests of the :class:`TokenIndex` bigram encoder, the
empty-input fast paths, and the zero-candidate behaviour end-to-end through
:class:`PowerResolver`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PowerConfig, PowerResolver
from repro.data.table import Table
from repro.exceptions import ConfigurationError, DataError, GraphError
from repro.graph import blocked_dominance_lists, blocked_edges, vectorized_edges
from repro.graph.dag import PairGraph
from repro.graph.grouped_graph import build_graph
from repro.similarity import (
    SimilarityConfig,
    TokenIndex,
    batch_similarity_matrix,
    similar_pairs,
    similarity_matrix,
    sparse_jaccard_join,
)
from repro.similarity.batch import batch_edit_similarities
from repro.similarity.join import _naive_join
from repro.similarity.tokenize import qgram_tokens, word_tokens

from conftest import random_vectors

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

#: A messy-but-realistic alphabet: letters, digits, whitespace to exercise
#: normalization, repetition to force token collisions, and a non-ASCII char.
_ALPHABET = "ab c1é  Z-"

text_strategy = st.text(alphabet=_ALPHABET, min_size=0, max_size=12)


@st.composite
def table_strategy(draw):
    num_attributes = draw(st.integers(min_value=1, max_value=3))
    rows = draw(
        st.lists(
            st.tuples(*[text_strategy] * num_attributes), min_size=2, max_size=12
        )
    )
    return Table.from_rows(
        "hyp", [f"a{k}" for k in range(num_attributes)], rows
    )


def all_pairs(table: Table):
    n = len(table)
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


def matrix_strategy():
    return st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    ).map(lambda args: random_vectors(args[2], args[0], args[1]))


token_sets_strategy = st.lists(
    st.frozensets(st.sampled_from(["a", "b", "c", "d", "ee", "f1"]), max_size=5),
    min_size=0,
    max_size=12,
)


# --------------------------------------------------------------------------- #
# Property: batch similarity ≡ scalar similarity, bit for bit
# --------------------------------------------------------------------------- #


class TestBatchMatrixEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(table=table_strategy(), function=st.sampled_from(["bigram", "jaccard", "edit"]))
    def test_bit_identical_to_scalar(self, table, function):
        pairs = all_pairs(table)
        config = SimilarityConfig.uniform(table.num_attributes, function=function)
        reference = similarity_matrix(table, pairs, config)
        fast = batch_similarity_matrix(table, pairs, config)
        assert fast.dtype == reference.dtype
        assert np.array_equal(reference, fast)

    @settings(max_examples=20, deadline=None)
    @given(table=table_strategy())
    def test_mixed_functions_and_threshold(self, table):
        pairs = all_pairs(table)
        functions = tuple(
            ["bigram", "jaccard", "edit"][k % 3] for k in range(table.num_attributes)
        )
        config = SimilarityConfig(functions=functions, attribute_threshold=0.35)
        assert np.array_equal(
            similarity_matrix(table, pairs, config),
            batch_similarity_matrix(table, pairs, config),
        )

    def test_on_fixture_bundle(self, small_bundle):
        table, pairs, vectors, _ = small_bundle
        config = SimilarityConfig.uniform(table.num_attributes)
        assert np.array_equal(vectors, batch_similarity_matrix(table, pairs, config))

    def test_pair_order_is_respected(self, small_bundle):
        table, pairs, vectors, _ = small_bundle
        config = SimilarityConfig.uniform(table.num_attributes)
        reversed_pairs = list(reversed(pairs))
        assert np.array_equal(
            vectors[::-1], batch_similarity_matrix(table, reversed_pairs, config)
        )


class TestTokenIndex:
    @settings(max_examples=40, deadline=None)
    @given(texts=st.lists(text_strategy, min_size=0, max_size=15))
    def test_bigram_index_matches_qgram_tokens(self, texts):
        index = TokenIndex.for_bigrams(texts)
        sizes = [int(index.sizes[index.row_of_text[i]]) for i in range(len(texts))]
        assert sizes == [len(qgram_tokens(text)) for text in texts]

    @settings(max_examples=30, deadline=None)
    @given(texts=st.lists(text_strategy, min_size=2, max_size=10))
    def test_bigram_constructor_equals_generic(self, texts):
        fast = TokenIndex.for_bigrams(texts)
        generic = TokenIndex(texts, qgram_tokens)
        n = len(texts)
        left = np.repeat(np.arange(n), n)
        right = np.tile(np.arange(n), n)
        assert np.array_equal(
            fast.jaccard_pairs(left, right), generic.jaccard_pairs(left, right)
        )

    def test_nul_strings_take_generic_path(self):
        texts = ["ab\x00cd", "abcd", ""]
        index = TokenIndex.for_bigrams(texts)
        generic = TokenIndex(texts, qgram_tokens)
        rows = np.arange(len(texts))
        assert np.array_equal(
            index.jaccard_pairs(rows, rows[::-1]),
            generic.jaccard_pairs(rows, rows[::-1]),
        )

    def test_empty_corpus(self):
        index = TokenIndex.for_bigrams(["", "  ", ""])
        assert index.vocab_size == 0
        assert np.array_equal(index.sizes, np.zeros(index.sizes.shape, dtype=np.int64))
        # jaccard(∅, ∅) = 1.0, matching the scalar convention.
        pairs = index.jaccard_pairs(np.array([0, 1]), np.array([1, 2]))
        assert np.array_equal(pairs, np.ones(2))


class TestTokenIndexExtend:
    """extend() ≡ from-scratch rebuild, bit for bit — the streaming contract."""

    @staticmethod
    def _assert_identical(extended: TokenIndex, scratch: TokenIndex, n: int):
        assert np.array_equal(extended.row_of_text, scratch.row_of_text)
        assert np.array_equal(extended.sizes, scratch.sizes)
        assert extended.vocab_size == scratch.vocab_size
        assert extended.bits.dtype == scratch.bits.dtype == np.uint64
        assert np.array_equal(extended.bits, scratch.bits)
        if n:
            left = np.repeat(np.arange(n), n)
            right = np.tile(np.arange(n), n)
            assert np.array_equal(
                extended.jaccard_pairs(left, right),
                scratch.jaccard_pairs(left, right),
            )

    @settings(max_examples=40, deadline=None)
    @given(
        texts=st.lists(text_strategy, min_size=1, max_size=16),
        cut=st.integers(min_value=0, max_value=16),
        data=st.data(),
    )
    def test_extend_equals_rebuild(self, texts, cut, data):
        tokenizer = data.draw(st.sampled_from([word_tokens, qgram_tokens]))
        cut = min(cut, len(texts))
        index = TokenIndex(texts[:cut], tokenizer)
        index.extend(texts[cut:])
        self._assert_identical(index, TokenIndex(texts, tokenizer), len(texts))

    @settings(max_examples=20, deadline=None)
    @given(
        texts=st.lists(text_strategy, min_size=1, max_size=12),
        cuts=st.lists(st.integers(min_value=0, max_value=12), max_size=4),
    )
    def test_chained_extends_equal_rebuild(self, texts, cuts):
        bounds = sorted({min(cut, len(texts)) for cut in cuts})
        if not bounds or bounds[0] == 0:
            bounds = [0] + [b for b in bounds if b]
        index = TokenIndex(texts[: bounds[0]] if bounds else [], word_tokens)
        previous = bounds[0] if bounds else 0
        for bound in bounds[1:] + [len(texts)]:
            index.extend(texts[previous:bound])
            previous = bound
        self._assert_identical(index, TokenIndex(texts, word_tokens), len(texts))

    def test_empty_batch_is_a_noop(self):
        texts = ["alpha beta", "beta gamma"]
        index = TokenIndex(texts, word_tokens)
        index.extend([])
        self._assert_identical(index, TokenIndex(texts, word_tokens), len(texts))

    def test_duplicate_texts_share_rows(self):
        texts = ["alpha beta", "beta gamma"]
        index = TokenIndex(texts, word_tokens)
        index.extend(["beta gamma", "alpha beta", "alpha beta"])
        scratch = TokenIndex(texts + ["beta gamma", "alpha beta", "alpha beta"],
                             word_tokens)
        assert len(index) == 2  # no new distinct strings, no new rows
        self._assert_identical(index, scratch, 5)

    def test_vocab_growth_pads_existing_rows(self):
        # >64 fresh tokens force the packed matrix into new uint64 words;
        # the old rows must zero-pad, changing no set bits.
        index = TokenIndex(["alpha beta"], word_tokens)
        words_before = index.bits.shape[1]
        grown = [" ".join(f"tok{i}{j}" for j in range(10)) for i in range(8)]
        index.extend(grown)
        assert index.bits.shape[1] > words_before
        self._assert_identical(
            index, TokenIndex(["alpha beta"] + grown, word_tokens), 9
        )

    def test_qgram_and_word_tokenizers_stay_distinct(self):
        texts = ["abc", "abd"]
        more = ["abe"]
        for tokenizer in (qgram_tokens, word_tokens):
            index = TokenIndex(texts, tokenizer)
            index.extend(more)
            self._assert_identical(index, TokenIndex(texts + more, tokenizer), 3)

    def test_bigram_fast_path_rejects_extend(self):
        index = TokenIndex.for_bigrams(["alpha", "beta"])
        with pytest.raises(ConfigurationError, match="for_bigrams"):
            index.extend(["gamma"])


class TestBatchEdit:
    def test_deduplicated_pairs_match_reference(self):
        texts = ["power", "tower", "power", "", "flower", "tower"]
        left = np.array([0, 0, 1, 2, 3, 4])
        right = np.array([1, 2, 5, 3, 4, 5])
        from repro.similarity.edit import edit_similarity

        expected = [edit_similarity(texts[i], texts[j]) for i, j in zip(left, right)]
        assert np.array_equal(batch_edit_similarities(texts, left, right), expected)


# --------------------------------------------------------------------------- #
# Property: blocked dominance kernel ≡ per-vertex reference
# --------------------------------------------------------------------------- #


class TestBlockedKernel:
    @settings(max_examples=30, deadline=None)
    @given(matrix_strategy())
    def test_blocked_edges_equal_reference(self, vectors):
        assert blocked_edges(vectors) == vectorized_edges(vectors)

    @settings(max_examples=30, deadline=None)
    @given(matrix_strategy(), st.integers(min_value=1, max_value=64))
    def test_block_size_is_immaterial(self, vectors, block_size):
        assert blocked_edges(vectors, block_size=block_size) == vectorized_edges(vectors)

    @settings(max_examples=30, deadline=None)
    @given(matrix_strategy())
    def test_adjacency_lists_equal_per_vertex_loop(self, vectors):
        graph = PairGraph([(i, i + 1) for i in range(vectors.shape[0])], vectors)
        reference = [graph.descendants(v) for v in range(len(graph))]
        blocked = blocked_dominance_lists(vectors, vectors)
        assert len(blocked) == len(reference)
        for fast, ref in zip(blocked, reference):
            assert np.array_equal(fast, ref)

    @settings(max_examples=20, deadline=None)
    @given(matrix_strategy())
    def test_grouped_graph_adjacency_matches_masks(self, vectors):
        graph = build_graph(
            [(i, i + 1) for i in range(vectors.shape[0])], vectors, epsilon=0.25
        )
        reference = [graph.descendants(v) for v in range(len(graph))]
        for fast, ref in zip(graph.adjacency(), reference):
            assert np.array_equal(fast, ref)

    def test_rejects_bad_shapes(self):
        with pytest.raises(GraphError):
            blocked_dominance_lists(np.zeros((3, 2)), np.zeros((2, 2)))
        with pytest.raises(GraphError):
            blocked_dominance_lists(np.zeros((2, 2)), np.zeros((2, 2)), block_size=0)


# --------------------------------------------------------------------------- #
# Property: sparse join ≡ naive join, across thresholds
# --------------------------------------------------------------------------- #


class TestSparseJoin:
    @settings(max_examples=40, deadline=None)
    @given(
        token_sets=token_sets_strategy,
        threshold=st.sampled_from([0.1, 0.2, 0.5, 0.8, 1.0]),
    )
    def test_equals_naive_join(self, token_sets, threshold):
        assert sparse_jaccard_join(token_sets, threshold) == _naive_join(
            token_sets, threshold
        )

    def test_method_sparse_through_similar_pairs(self, small_table):
        assert similar_pairs(small_table, 0.2, method="sparse") == similar_pairs(
            small_table, 0.2, method="naive"
        )

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            sparse_jaccard_join([frozenset("ab")], 0.0)


# --------------------------------------------------------------------------- #
# Empty inputs and zero-candidate behaviour, end to end
# --------------------------------------------------------------------------- #


def _tiny_table(rows, attributes=("name", "city")) -> Table:
    return Table.from_rows("tiny", attributes, rows)


class TestEmptyInputs:
    def test_similarity_matrix_empty_pairs(self):
        table = _tiny_table([("a", "x"), ("b", "y")])
        config = SimilarityConfig.uniform(2)
        for vectorize in (similarity_matrix, batch_similarity_matrix):
            vectors = vectorize(table, [], config)
            assert vectors.shape == (0, 2)
            assert vectors.dtype == np.float64

    def test_similar_pairs_empty_and_singleton_tables(self):
        for rows in ([], [("solo", "record")]):
            table = _tiny_table(rows)
            for method in ("auto", "naive", "prefix", "sparse"):
                assert similar_pairs(table, 0.2, method=method) == []

    def test_similar_pairs_rejects_unknown_method_even_when_tiny(self):
        with pytest.raises(ConfigurationError):
            similar_pairs(_tiny_table([]), 0.2, method="bogus")

    def test_resolver_with_zero_candidates_raises_data_error(self):
        # Completely dissimilar records: pruning leaves nothing to resolve.
        table = Table.from_rows(
            "disjoint",
            ("name", "city"),
            [("aaaa", "bbbb"), ("cccc", "dddd"), ("eeee", "ffff")],
            entity_ids=[0, 1, 2],
        )
        with pytest.raises(DataError):
            PowerResolver(PowerConfig(pruning_threshold=0.9)).resolve(table)

    def test_resolver_scalar_and_batch_paths_agree(self, small_table):
        results = [
            PowerResolver(
                PowerConfig(seed=3, use_batch_similarity=use_batch)
            ).resolve(small_table)
            for use_batch in (True, False)
        ]
        batch_run, scalar_run = results
        assert batch_run.candidate_pairs == scalar_run.candidate_pairs
        assert batch_run.matches == scalar_run.matches
        assert batch_run.clusters == scalar_run.clusters
        assert batch_run.questions == scalar_run.questions

    def test_power_config_validates_join_knobs(self):
        with pytest.raises(ConfigurationError):
            PowerConfig(join_method="quadratic")
        with pytest.raises(ConfigurationError):
            PowerConfig(join_tokens="chars")
        config = PowerConfig(join_method="sparse", join_tokens="qgram")
        assert config.join_method == "sparse"
