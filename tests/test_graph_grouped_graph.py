"""Tests for the grouped graph (Definitions 5-6)."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import (
    GroupedGraph,
    PairGraph,
    build_graph,
    split_grouping,
    strictly_dominates,
)

from conftest import random_vectors


@pytest.fixture()
def simple_grouped():
    pairs = [(0, 1), (0, 2), (1, 2), (3, 4)]
    vectors = np.array(
        [
            [0.95, 0.9],
            [0.9, 0.92],
            [0.5, 0.5],
            [0.1, 0.1],
        ]
    )
    base = PairGraph(pairs, vectors)
    grouping = [[0, 1], [2], [3]]
    return GroupedGraph(base, grouping)


class TestGroupedGraph:
    def test_bounds(self, simple_grouped):
        assert np.allclose(simple_grouped.lower_bounds[0], [0.9, 0.9])
        assert np.allclose(simple_grouped.upper_bounds[0], [0.95, 0.92])

    def test_group_dominance_uses_bounds(self, simple_grouped):
        # group 0 (l = .9,.9) > group 1 (u = .5,.5) > group 2 (u = .1,.1).
        assert sorted(simple_grouped.descendants(0)) == [1, 2]
        assert sorted(simple_grouped.ancestors(2)) == [0, 1]

    def test_member_pairs(self, simple_grouped):
        assert set(simple_grouped.member_pairs(0)) == {(0, 1), (0, 2)}

    def test_representative_is_a_member(self, simple_grouped):
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert simple_grouped.representative_pair(0, rng) in {(0, 1), (0, 2)}

    def test_group_of_pair_vertex(self, simple_grouped):
        assert simple_grouped.group_of_pair_vertex(0) == 0
        assert simple_grouped.group_of_pair_vertex(2) == 1
        with pytest.raises(GraphError):
            simple_grouped.group_of_pair_vertex(99)

    def test_group_sizes(self, simple_grouped):
        assert list(simple_grouped.group_sizes()) == [2, 1, 1]

    def test_partition_validation(self):
        base = PairGraph([(0, 1), (1, 2)], np.array([[0.5], [0.6]]))
        with pytest.raises(GraphError):
            GroupedGraph(base, [[0]])  # misses vertex 1
        with pytest.raises(GraphError):
            GroupedGraph(base, [[0, 1], [1]])  # duplicate
        with pytest.raises(GraphError):
            GroupedGraph(base, [[0, 1], []])  # empty group
        with pytest.raises(GraphError):
            GroupedGraph(base, [[0, 1, 5]])  # out of range

    def test_group_order_sound_for_members(self):
        """If g_i > g_j then every member pair of g_i strictly dominates
        every member pair of g_j (the soundness the paper proves)."""
        vectors = random_vectors(21, 40, 3)
        base = PairGraph([(i, i + 100) for i in range(40)], vectors)
        grouped = GroupedGraph(base, split_grouping(vectors, 0.15))
        for gi in range(len(grouped)):
            for gj in grouped.descendants(gi):
                for a in grouped.grouping[gi]:
                    for b in grouped.grouping[int(gj)]:
                        assert strictly_dominates(vectors[a], vectors[b])


class TestBuildGraph:
    def test_epsilon_none_returns_pair_graph(self, small_bundle):
        _, pairs, vectors, _ = small_bundle
        graph = build_graph(pairs, vectors, epsilon=None)
        assert isinstance(graph, PairGraph)
        assert len(graph) == len(pairs)

    def test_grouped_smaller_than_base(self, small_bundle):
        _, pairs, vectors, _ = small_bundle
        graph = build_graph(pairs, vectors, epsilon=0.1)
        assert isinstance(graph, GroupedGraph)
        assert len(graph) <= len(pairs)

    def test_unknown_grouping_algorithm(self, small_bundle):
        _, pairs, vectors, _ = small_bundle
        with pytest.raises(GraphError):
            build_graph(pairs, vectors, grouping_algorithm="magic")
