"""The verification battery and its CLI wiring."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.data.generators import load_dataset
from repro.exceptions import DataError
from repro.verify import BatteryConfig, run_battery, subsample_table


class TestSubsample:
    def test_full_scale_is_identity(self):
        table = load_dataset("restaurant")
        assert subsample_table(table, 1.0) is table

    def test_prefix_subsample(self):
        table = load_dataset("restaurant")
        small = subsample_table(table, 0.05)
        keep = max(20, round(0.05 * len(table)))
        assert len(small) == keep
        for index in range(keep):
            assert small[index].values == table[index].values
            assert small[index].entity_id == table[index].entity_id

    def test_minimum_floor(self):
        table = load_dataset("restaurant")
        tiny = subsample_table(table, 0.001)
        assert len(tiny) == 20

    def test_bad_scale_rejected(self):
        table = load_dataset("restaurant")
        with pytest.raises(DataError):
            subsample_table(table, 0.0)
        with pytest.raises(DataError):
            subsample_table(table, 1.5)


class TestBattery:
    def test_small_battery_passes(self):
        report = run_battery(
            BatteryConfig(
                dataset="restaurant",
                scale=0.03,
                seeds=2,
                include_mutation=False,
                include_metamorphic=False,
            )
        )
        assert report.passed, report.summary()
        names = {result.name for result in report.results}
        assert any(name.startswith("dominance-construction") for name in names)
        assert any(name.startswith("selector-differential") for name in names)
        assert any(name.startswith("verified-resolution") for name in names)

    def test_selector_names_default(self):
        names = BatteryConfig().selector_names()
        assert "power" in names
        assert "greedy-reference" in names

    def test_selector_names_override(self):
        assert BatteryConfig(selectors=("power",)).selector_names() == ("power",)


class TestVerifyCli:
    def test_verify_command_passes(self, capsys):
        code = main(
            [
                "verify",
                "--dataset", "restaurant",
                "--scale", "0.03",
                "--seeds", "2",
                "--skip-mutation",
                "--skip-metamorphic",
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all passed" in out

    def test_verify_command_reports_failures(self, capsys, monkeypatch):
        from repro.graph import construction

        original = construction.blocked_dominance_lists

        def mutated(dominant, dominated, *args, **kwargs):
            lists = original(dominant, dominated, *args, **kwargs)
            for index, children in enumerate(lists):
                if len(children):
                    lists[index] = children[:-1]
                    break
            return lists

        monkeypatch.setattr(construction, "blocked_dominance_lists", mutated)
        code = main(
            [
                "verify",
                "--dataset", "restaurant",
                "--scale", "0.03",
                "--seeds", "1",
                "--skip-mutation",
                "--skip-metamorphic",
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out
