"""Property tests for the shard partitioner (:mod:`repro.shard.partition`).

The partitioner's contract, enforced here with hypothesis-generated
candidate graphs:

* **disjoint** — no candidate pair lands in two shards;
* **covering** — every candidate pair lands in exactly one shard;
* **split discipline** — a connected component is never split across
  shards unless it holds more than ``max_pairs`` candidate pairs;
* **balance** — the heaviest shard carries at most twice the ideal
  (mean) load whenever the blocks are fine-grained enough for the LPT
  packer to balance them.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.shard.partition import (
    connected_components,
    pack_components,
    plan_pair_shards,
    split_component,
    vertex_slices,
)


def _pairs_strategy(max_records: int = 24, max_pairs: int = 60):
    """Random undirected candidate-pair sets over a small record universe."""
    pair = st.tuples(
        st.integers(0, max_records - 1), st.integers(0, max_records - 1)
    ).filter(lambda ab: ab[0] != ab[1]).map(lambda ab: (min(ab), max(ab)))
    return st.lists(pair, min_size=1, max_size=max_pairs, unique=True).map(sorted)


def _component_of_pairs(pairs):
    """pair -> frozenset of pairs in its connected component (reference)."""
    records = sorted({r for pair in pairs for r in pair})
    dense = {r: i for i, r in enumerate(records)}
    components = connected_components(
        len(records), [(dense[a], dense[b]) for a, b in pairs]
    )
    root_of = {}
    for index, nodes in enumerate(components):
        for node in nodes:
            root_of[records[int(node)]] = index
    by_component = {}
    for pair in pairs:
        by_component.setdefault(root_of[pair[0]], set()).add(pair)
    return {
        pair: frozenset(by_component[root_of[pair[0]]]) for pair in pairs
    }


class TestPlanProperties:
    @given(pairs=_pairs_strategy(), num_shards=st.integers(1, 6))
    @settings(max_examples=120, deadline=None)
    def test_disjoint_and_covering(self, pairs, num_shards):
        plan = plan_pair_shards(pairs, num_shards)
        seen = []
        for shard in plan.shards:
            seen.extend(shard.pairs)
        assert len(seen) == len(set(seen)), "a pair landed in two shards"
        assert sorted(seen) == sorted(pairs), "shards do not cover the pairs"

    @given(
        pairs=_pairs_strategy(),
        num_shards=st.integers(1, 6),
        max_pairs=st.one_of(st.none(), st.integers(1, 40)),
    )
    @settings(max_examples=120, deadline=None)
    def test_never_splits_small_components(self, pairs, num_shards, max_pairs):
        """A component with <= max_pairs pairs stays within one shard."""
        plan = plan_pair_shards(pairs, num_shards, max_pairs=max_pairs)
        component_of = _component_of_pairs(pairs)
        shard_of = {
            pair: shard.shard_id
            for shard in plan.shards
            for pair in shard.pairs
        }
        for pair, component in component_of.items():
            if max_pairs is not None and len(component) > max_pairs:
                continue  # over the cap: the planner may split it
            owners = {shard_of[member] for member in component}
            assert len(owners) == 1, (
                f"component of {pair} ({len(component)} pairs, cap "
                f"{max_pairs}) split across shards {sorted(owners)}"
            )

    @given(pairs=_pairs_strategy(), num_shards=st.integers(1, 6))
    @settings(max_examples=120, deadline=None)
    def test_balance_within_2x_when_blocks_are_fine(self, pairs, num_shards):
        """With blocks capped near the ideal load, LPT lands within 2x.

        Balance is only achievable when no single block exceeds the ideal
        per-shard load, so the cap is set to ``ceil(pairs / shards)`` —
        exactly what :class:`repro.shard.ShardedResolver` defaults to.
        LPT's bound is ``mean + largest block <= ideal + ceil(ideal)``,
        i.e. within ``2 * ideal + 1`` for integer loads.
        """
        cap = max(1, -(-len(pairs) // num_shards))  # ceil division
        plan = plan_pair_shards(pairs, num_shards, max_pairs=cap)
        counts = plan.pair_counts
        assert counts, "plan lost every shard"
        ideal = max(1.0, len(pairs) / num_shards)
        assert max(counts) <= 2 * ideal + 1, (
            f"heaviest shard {max(counts)} exceeds 2x ideal {ideal:.2f} "
            f"(counts {counts})"
        )
        assert max(counts) <= cap + len(pairs) / num_shards + 1e-9

    @given(
        pairs=_pairs_strategy(),
        num_shards=st.integers(1, 6),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_weights_do_not_break_the_contract(self, pairs, num_shards, seed):
        """Weak-edge weighting changes *where* cuts land, never coverage."""
        rng = np.random.default_rng(seed)
        weights = rng.random(len(pairs))
        cap = max(1, len(pairs) // max(1, num_shards))
        plan = plan_pair_shards(pairs, num_shards, weights=weights, max_pairs=cap)
        seen = sorted(pair for shard in plan.shards for pair in shard.pairs)
        assert seen == sorted(pairs)

    @given(pairs=_pairs_strategy(), num_shards=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_plan_is_deterministic(self, pairs, num_shards):
        first = plan_pair_shards(pairs, num_shards)
        second = plan_pair_shards(list(pairs), num_shards)
        assert [s.pairs for s in first.shards] == [s.pairs for s in second.shards]


class TestSplitComponent:
    @given(
        num_nodes=st.integers(2, 12),
        extra=st.integers(0, 12),
        max_pairs=st.integers(1, 20),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=80, deadline=None)
    def test_blocks_partition_the_nodes(self, num_nodes, extra, max_pairs, seed):
        rng = np.random.default_rng(seed)
        # A random spanning tree plus extra edges: always one component.
        edges = [
            (int(rng.integers(0, node)), node) for node in range(1, num_nodes)
        ]
        for _ in range(extra):
            a, b = rng.integers(0, num_nodes, size=2)
            if a != b:
                edges.append((int(min(a, b)), int(max(a, b))))
        nodes = np.arange(num_nodes, dtype=np.int64)
        weights = rng.random(len(edges))
        blocks = split_component(nodes, edges, weights, max_pairs)
        merged = sorted(int(n) for block in blocks for n in block)
        assert merged == list(range(num_nodes))
        if len(edges) <= max_pairs:
            assert len(blocks) == 1, "small component must come back whole"

    def test_cuts_weakest_edge(self):
        # Path 0-1-2 with a weak middle edge and a 1-pair cap: the strong
        # edge is granted, the weak one is cut.
        nodes = np.arange(3, dtype=np.int64)
        blocks = split_component(
            nodes, [(0, 1), (1, 2)], [0.9, 0.1], max_pairs=1
        )
        as_sets = [set(map(int, block)) for block in blocks]
        assert {0, 1} in as_sets and {2} in as_sets

    def test_rejects_bad_cap(self):
        with pytest.raises(ConfigurationError):
            split_component(np.arange(2), [(0, 1)], None, max_pairs=0)


class TestPacking:
    @given(
        weights=st.lists(st.integers(0, 50), min_size=0, max_size=20),
        num_bins=st.integers(1, 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_every_component_packed_once(self, weights, num_bins):
        bins = pack_components(weights, num_bins)
        packed = sorted(index for bin_ in bins for index in bin_)
        assert packed == list(range(len(weights)))
        assert len(bins) <= num_bins

    @given(
        weights=st.lists(st.integers(1, 50), min_size=1, max_size=20),
        num_bins=st.integers(1, 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_lpt_within_4_3_plus_largest(self, weights, num_bins):
        """LPT's makespan bound: max load <= mean + largest item."""
        bins = pack_components(weights, num_bins)
        loads = [sum(weights[i] for i in bin_) for bin_ in bins]
        assert max(loads) <= sum(weights) / num_bins + max(weights) + 1e-9


class TestVertexSlices:
    @given(num_vertices=st.integers(0, 200), num_slices=st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_slices_tile_the_range(self, num_vertices, num_slices):
        slices = vertex_slices(num_vertices, num_slices)
        covered = []
        for lo, hi in slices:
            assert lo < hi, "empty slices must be dropped"
            covered.extend(range(lo, hi))
        assert covered == list(range(num_vertices))
        if num_vertices:
            sizes = [hi - lo for lo, hi in slices]
            assert max(sizes) - min(sizes) <= 1, "slices must be balanced"
