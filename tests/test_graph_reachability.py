"""Tests for the packed-bitset reachability index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import (
    Color,
    ColoringState,
    GroupedGraph,
    PairGraph,
    ReachabilityIndex,
    lowest_set_bit,
    pack_mask,
    split_grouping,
    unpack_mask,
)
from repro.verify.oracles import NaivePairGraph

from conftest import random_vectors


def make_graph(seed: int, n: int, m: int = 3) -> PairGraph:
    vectors = random_vectors(seed, n, m)
    pairs = [(2 * i, 2 * i + 1) for i in range(n)]
    return PairGraph(pairs, vectors)


class TestPackedBits:
    @given(st.lists(st.booleans(), max_size=40))
    def test_pack_unpack_round_trip(self, bits):
        mask = np.array(bits, dtype=bool)
        assert np.array_equal(unpack_mask(pack_mask(mask), len(bits)), mask)

    @given(st.lists(st.booleans(), max_size=40))
    def test_lowest_set_bit_matches_argmax(self, bits):
        mask = np.array(bits, dtype=bool)
        expected = int(np.argmax(mask)) if mask.any() else -1
        assert lowest_set_bit(pack_mask(mask)) == expected

    def test_lowest_set_bit_empty_vector(self):
        assert lowest_set_bit(np.zeros(0, dtype=np.uint8)) == -1


class TestIndexMasks:
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 63, 64, 65, 200])
    def test_masks_match_graph_broadcast(self, n):
        """Unpacked index rows must be byte-identical to the graph's own
        float-broadcast masks — including at byte-boundary sizes."""
        graph = make_graph(seed=n, n=n)
        index = graph.build_reachability()
        assert index is not None
        for v in range(n):
            assert np.array_equal(index.descendant_mask(v), graph.descendant_mask(v))
            assert np.array_equal(index.ancestor_mask(v), graph.ancestor_mask(v))

    def test_grouped_graph_masks(self):
        vectors = random_vectors(3, 60, 3)
        pairs = [(2 * i, 2 * i + 1) for i in range(60)]
        grouped = GroupedGraph(PairGraph(pairs, vectors), split_grouping(vectors, 0.1))
        index = grouped.build_reachability()
        assert index is not None
        for v in range(len(grouped)):
            assert np.array_equal(index.descendant_mask(v), grouped.descendant_mask(v))
            assert np.array_equal(index.ancestor_mask(v), grouped.ancestor_mask(v))

    def test_row_bounds_checked(self):
        index = make_graph(seed=0, n=5).build_reachability()
        with pytest.raises(GraphError):
            index.descendant_row(5)
        with pytest.raises(GraphError):
            index.ancestor_row(-1)


class TestGating:
    def test_zero_budget_skips_index(self):
        graph = make_graph(seed=1, n=10)
        assert graph.build_reachability(max_bytes=0) is None
        assert graph.reachability is None

    def test_naive_graph_never_indexed(self):
        """The oracle twins expose no dominance operands, so they stay on
        the pure reference paths."""
        vectors = random_vectors(2, 12, 3)
        naive = NaivePairGraph([(2 * i, 2 * i + 1) for i in range(12)], vectors)
        assert naive.build_reachability() is None

    def test_index_built_once_and_cached(self):
        graph = make_graph(seed=4, n=20)
        first = graph.build_reachability()
        assert first is graph.build_reachability()
        assert first is graph.reachability

    def test_estimated_bytes_matches_actual(self):
        graph = make_graph(seed=5, n=33)
        index = graph.build_reachability()
        assert index.nbytes() == ReachabilityIndex.estimated_bytes(33)


class TestColoringEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=999))
    def test_propagation_identical_with_and_without_index(self, seed):
        """apply_answer through the packed index colors exactly the same
        vertices as the reference mask-broadcast path."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 40))
        plain = make_graph(seed=seed, n=n)
        indexed = make_graph(seed=seed, n=n)
        assert indexed.build_reachability() is not None
        ref, fast = ColoringState(plain), ColoringState(indexed)
        for _ in range(int(rng.integers(1, 12))):
            vertex = int(rng.integers(0, n))
            answer = bool(rng.integers(0, 2))
            ref.apply_answer(vertex, answer)
            fast.apply_answer(vertex, answer)
        for v in range(n):
            assert ref.color_of(v) == fast.color_of(v)
        assert ref.color_of(0) in (Color.UNCOLORED, Color.GREEN, Color.RED, Color.BLUE)
