"""Tests for the crowd latency model."""

import pytest

from repro.crowd import PerfectCrowd
from repro.crowd.latency import LatencyModel
from repro.exceptions import ConfigurationError


class TestBatchSeconds:
    def test_empty_batch_free(self):
        assert LatencyModel().batch_seconds(0) == 0.0

    def test_single_wave(self):
        # 5 questions x 5 assignments = 25 = exactly the worker pool.
        model = LatencyModel(concurrent_workers=25, seconds_per_answer=30,
                             round_overhead_seconds=120, assignments=5)
        assert model.batch_seconds(5) == 120 + 30

    def test_multiple_waves(self):
        model = LatencyModel(concurrent_workers=25, seconds_per_answer=30,
                             round_overhead_seconds=120, assignments=5)
        assert model.batch_seconds(6) == 120 + 2 * 30  # 30 assignments -> 2 waves

    def test_negative_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel().batch_seconds(-1)


class TestEstimates:
    def test_serial_dominated_by_overhead(self):
        """100 one-question rounds cost ~100 overheads; one 100-question
        round costs one overhead plus throughput — far less."""
        model = LatencyModel()
        serial = model.estimate_seconds([1] * 100)
        parallel = model.estimate_seconds([100])
        assert serial > 5 * parallel

    def test_uniform_matches_exact_for_equal_batches(self):
        model = LatencyModel()
        exact = model.estimate_seconds([10, 10, 10])
        uniform = model.estimate_uniform(questions=30, iterations=3)
        assert exact == pytest.approx(uniform)

    def test_zero_iterations(self):
        assert LatencyModel().estimate_uniform(0, 0) == 0.0

    def test_invalid_totals(self):
        with pytest.raises(ConfigurationError):
            LatencyModel().estimate_uniform(-1, 2)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(concurrent_workers=0)
        with pytest.raises(ConfigurationError):
            LatencyModel(seconds_per_answer=0)
        with pytest.raises(ConfigurationError):
            LatencyModel(round_overhead_seconds=-1)
        with pytest.raises(ConfigurationError):
            LatencyModel(assignments=0)


class TestSessionIntegration:
    def test_sessions_record_batch_sizes(self):
        truth = {(0, 1): True, (2, 3): False, (4, 5): True}
        session = PerfectCrowd(truth).session()
        session.ask_batch([(0, 1), (2, 3)])
        session.ask((4, 5))
        assert session.batch_sizes == [2, 1]

    def test_selector_latency_ranking(self, small_bundle):
        """Power's few fat rounds beat SinglePath's many thin ones on the
        modeled wall clock, mirroring the paper's iteration argument."""
        from repro.graph import PairGraph
        from repro.selection import SinglePathSelector, TopoSortSelector

        _, pairs, vectors, truth = small_bundle
        graph = PairGraph(pairs, vectors)
        model = LatencyModel()
        crowd = PerfectCrowd(truth)
        serial_session = crowd.session()
        SinglePathSelector().run(graph, serial_session)
        parallel_session = crowd.session()
        TopoSortSelector().run(graph, parallel_session)
        assert model.estimate_seconds(parallel_session.batch_sizes) < (
            model.estimate_seconds(serial_session.batch_sizes)
        )
