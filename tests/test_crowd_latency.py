"""Tests for the crowd latency model."""

import pytest

from repro.crowd import PerfectCrowd
from repro.crowd.latency import LatencyModel
from repro.exceptions import ConfigurationError


class TestBatchSeconds:
    def test_empty_batch_free(self):
        assert LatencyModel().batch_seconds(0) == 0.0

    def test_single_wave(self):
        # 5 questions x 5 assignments = 25 = exactly the worker pool.
        model = LatencyModel(concurrent_workers=25, seconds_per_answer=30,
                             round_overhead_seconds=120, assignments=5)
        assert model.batch_seconds(5) == 120 + 30

    def test_multiple_waves(self):
        model = LatencyModel(concurrent_workers=25, seconds_per_answer=30,
                             round_overhead_seconds=120, assignments=5)
        assert model.batch_seconds(6) == 120 + 2 * 30  # 30 assignments -> 2 waves

    def test_negative_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel().batch_seconds(-1)


class TestEstimates:
    def test_serial_dominated_by_overhead(self):
        """100 one-question rounds cost ~100 overheads; one 100-question
        round costs one overhead plus throughput — far less."""
        model = LatencyModel()
        serial = model.estimate_seconds([1] * 100)
        parallel = model.estimate_seconds([100])
        assert serial > 5 * parallel

    def test_uniform_matches_exact_for_equal_batches(self):
        model = LatencyModel()
        exact = model.estimate_seconds([10, 10, 10])
        uniform = model.estimate_uniform(questions=30, iterations=3)
        assert exact == pytest.approx(uniform)

    def test_zero_iterations(self):
        assert LatencyModel().estimate_uniform(0, 0) == 0.0

    def test_invalid_totals(self):
        with pytest.raises(ConfigurationError):
            LatencyModel().estimate_uniform(-1, 2)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(concurrent_workers=0)
        with pytest.raises(ConfigurationError):
            LatencyModel(seconds_per_answer=0)
        with pytest.raises(ConfigurationError):
            LatencyModel(round_overhead_seconds=-1)
        with pytest.raises(ConfigurationError):
            LatencyModel(assignments=0)


class TestEdgeCases:
    def test_zero_question_batches_inside_sequence_are_free(self):
        model = LatencyModel()
        assert model.estimate_seconds([0, 0, 0]) == 0.0
        assert model.estimate_seconds([5, 0, 5]) == model.estimate_seconds([5, 5])

    def test_empty_sequence(self):
        assert LatencyModel().estimate_seconds([]) == 0.0

    def test_single_worker_serialises_every_assignment(self):
        model = LatencyModel(concurrent_workers=1, seconds_per_answer=10,
                             round_overhead_seconds=0, assignments=3)
        # 4 questions x 3 assignments, one at a time.
        assert model.batch_seconds(4) == 12 * 10

    def test_workers_one_estimates_agree(self):
        model = LatencyModel(concurrent_workers=1, seconds_per_answer=7,
                             round_overhead_seconds=13, assignments=2)
        exact = model.estimate_seconds([4, 4])
        uniform = model.estimate_uniform(questions=8, iterations=2)
        assert exact == pytest.approx(uniform)

    def test_uniform_upper_bounds_unequal_batches(self):
        """With a fractional mean batch size, ceil() makes the uniform
        estimate conservative relative to per-round knowledge only through
        rounding — both must stay within one wave per round."""
        model = LatencyModel(concurrent_workers=25, seconds_per_answer=30,
                             round_overhead_seconds=120, assignments=5)
        exact = model.estimate_seconds([1, 9])
        uniform = model.estimate_uniform(questions=10, iterations=2)
        assert abs(exact - uniform) <= 2 * model.seconds_per_answer


class TestEngineClockConvergence:
    def test_engine_clock_equals_closed_form_without_faults(self):
        """Under a zero-fault profile the event-driven clock must land
        exactly on LatencyModel.estimate_seconds for the same batch shape."""
        from repro.engine import CrowdEngine, EngineConfig

        truth = {(i, i + 1): True for i in range(0, 40, 2)}
        pairs = list(truth)
        model = LatencyModel(concurrent_workers=7, seconds_per_answer=11.0,
                             round_overhead_seconds=53.0, assignments=5)
        engine = CrowdEngine(EngineConfig(latency=model, faults="none", seed=3))
        crowd = PerfectCrowd(truth)
        session = engine.session(crowd)
        session.ask_batch(pairs[:3])
        session.ask_batch(pairs[3:15])
        session.ask_batch(pairs[15:16])
        engine.finalize(session)
        assert session.batch_sizes == [3, 12, 1]
        assert engine.wall_clock_seconds == pytest.approx(
            model.estimate_seconds(session.batch_sizes)
        )

    def test_engine_clock_with_reasks_still_matches(self):
        """Re-asked pairs are free in money but still occupy workers, and
        the closed form counts batch entries the same way."""
        from repro.engine import CrowdEngine, EngineConfig

        truth = {(0, 1): True, (2, 3): False}
        model = LatencyModel(concurrent_workers=3, seconds_per_answer=5.0,
                             round_overhead_seconds=17.0, assignments=3)
        engine = CrowdEngine(EngineConfig(latency=model, faults="none"))
        session = engine.session(PerfectCrowd(truth, assignments=3))
        session.ask_batch([(0, 1), (2, 3)])
        session.ask_batch([(0, 1)])  # re-ask: cached answer, real latency
        engine.finalize(session)
        assert session.questions_asked == 2
        assert engine.wall_clock_seconds == pytest.approx(
            model.estimate_seconds([2, 1])
        )


class TestSessionIntegration:
    def test_sessions_record_batch_sizes(self):
        truth = {(0, 1): True, (2, 3): False, (4, 5): True}
        session = PerfectCrowd(truth).session()
        session.ask_batch([(0, 1), (2, 3)])
        session.ask((4, 5))
        assert session.batch_sizes == [2, 1]

    def test_selector_latency_ranking(self, small_bundle):
        """Power's few fat rounds beat SinglePath's many thin ones on the
        modeled wall clock, mirroring the paper's iteration argument."""
        from repro.graph import PairGraph
        from repro.selection import SinglePathSelector, TopoSortSelector

        _, pairs, vectors, truth = small_bundle
        graph = PairGraph(pairs, vectors)
        model = LatencyModel()
        crowd = PerfectCrowd(truth)
        serial_session = crowd.session()
        SinglePathSelector().run(graph, serial_session)
        parallel_session = crowd.session()
        TopoSortSelector().run(graph, parallel_session)
        assert model.estimate_seconds(parallel_session.batch_sizes) < (
            model.estimate_seconds(serial_session.batch_sizes)
        )
