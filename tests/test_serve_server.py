"""End-to-end tests for the resolution server, over real sockets.

Everything here runs in-process (server and client share the event loop)
but through genuine TCP connections, so framing, pipelining, disconnects,
and the HTTP probe endpoints are all exercised for real.  The load-
bearing assertions are the equivalence ones: session state reached
through the server — including across LRU evict/restore cycles and a
client that vanishes mid-ingest — must be bit-identical (``state_sha``)
to driving :class:`StreamingResolver` directly.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import PowerConfig
from repro.exceptions import OverloadedError, ServeError
from repro.serve import (
    PROTOCOL_VERSION,
    AsyncServeClient,
    ResolutionServer,
    ServeApp,
    encode,
)
from repro.stream import StreamingResolver

ATTRS = ("name", "city", "cuisine")


def _chunks(table, batches):
    records = list(table)
    size = max(1, -(-len(records) // batches))
    return [records[start : start + size] for start in range(0, len(records), size)]


def _rows(chunk):
    return [list(record.values) for record in chunk]


def _ids(chunk):
    return [record.entity_id for record in chunk]


def _direct_sha(table, tmp_path, name, chunks, seed=0):
    resolver = StreamingResolver(
        table.attributes,
        config=PowerConfig(seed=seed),
        name=name,
        checkpoint_dir=tmp_path / f"direct-{name}",
    )
    for chunk in chunks:
        resolver.add_batch(_rows(chunk), entity_ids=_ids(chunk))
    return resolver.checkpoint()["state_sha"]


def run(coro):
    return asyncio.run(coro)


class TestEndToEnd:
    def test_session_through_server_matches_direct_stream(
        self, small_table, tmp_path
    ):
        chunks = _chunks(small_table, 3)

        async def scenario():
            app = ServeApp(tmp_path / "serve", max_sessions=4)
            async with ResolutionServer(app) as server:
                async with AsyncServeClient(port=server.port) as client:
                    created = await client.create_session(
                        "t1", list(small_table.attributes)
                    )
                    assert created["created"] is True
                    for number, chunk in enumerate(chunks, start=1):
                        report = await client.ingest(
                            "t1", _rows(chunk), _ids(chunk)
                        )
                        assert report["batch"] == number
                    clusters = await client.query_clusters("t1")
                    assert clusters["records"] == len(small_table)
                    record = await client.checkpoint("t1")
                    return record["state_sha"], clusters["clusters"]

        sha, clusters = run(scenario())
        assert sha == _direct_sha(small_table, tmp_path, "t1", chunks)
        assert clusters  # non-trivial resolution happened

    def test_eviction_cycles_preserve_state_sha(self, small_table, tmp_path):
        """max_sessions=1 with alternating tenants forces evict/restore on
        every touch; both final hashes must still match direct runs."""
        chunks_a = _chunks(small_table, 2)
        chunks_b = _chunks(small_table, 3)

        async def scenario():
            app = ServeApp(tmp_path / "serve", max_sessions=1)
            async with ResolutionServer(app) as server:
                async with AsyncServeClient(port=server.port) as client:
                    await client.create_session("a", list(ATTRS))
                    await client.create_session("b", list(ATTRS))
                    for index in range(max(len(chunks_a), len(chunks_b))):
                        if index < len(chunks_a):
                            await client.ingest(
                                "a", _rows(chunks_a[index]), _ids(chunks_a[index])
                            )
                        if index < len(chunks_b):
                            await client.ingest(
                                "b", _rows(chunks_b[index]), _ids(chunks_b[index])
                            )
                    sha_a = (await client.close_session("a"))["state_sha"]
                    sha_b = (await client.close_session("b"))["state_sha"]
            assert app.registry.evictions >= 1
            assert app.registry.restores >= 1
            assert app.registry.resident <= 1
            return sha_a, sha_b

        sha_a, sha_b = run(scenario())
        assert sha_a == _direct_sha(small_table, tmp_path, "a", chunks_a)
        assert sha_b == _direct_sha(small_table, tmp_path, "b", chunks_b)

    def test_resident_sessions_stay_bounded(self, small_table, tmp_path):
        chunk = _chunks(small_table, 6)[0]

        async def scenario():
            app = ServeApp(tmp_path / "serve", max_sessions=2)
            async with ResolutionServer(app) as server:
                async with AsyncServeClient(port=server.port) as client:
                    for index in range(5):
                        name = f"s{index}"
                        await client.create_session(name, list(ATTRS))
                        await client.ingest(name, _rows(chunk), _ids(chunk))
                        assert app.registry.resident <= 2
            assert app.registry.evictions >= 3
            assert len(app.registry.known_sessions()) == 5

        run(scenario())

    def test_close_returns_final_state_even_when_evicted(
        self, small_table, tmp_path
    ):
        chunk = _chunks(small_table, 4)[0]

        async def scenario():
            app = ServeApp(tmp_path / "serve", max_sessions=1)
            async with ResolutionServer(app) as server:
                async with AsyncServeClient(port=server.port) as client:
                    await client.create_session("cold", list(ATTRS))
                    await client.ingest("cold", _rows(chunk), _ids(chunk))
                    # Touch another session so "cold" is evicted to disk.
                    await client.create_session("warm", list(ATTRS))
                    assert "cold" not in app.registry.resident_names()
                    closed = await client.close_session("cold")
                    return closed["state_sha"]

        sha = run(scenario())
        assert sha == _direct_sha(small_table, tmp_path, "cold", [chunk])


class TestProtocolEdge:
    async def _raw_exchange(self, port, payload: bytes) -> dict:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(payload)
        await writer.drain()
        line = await reader.readline()
        writer.close()
        return json.loads(line)

    def test_unknown_version_and_op_and_bad_json(self, tmp_path):
        async def scenario():
            app = ServeApp(tmp_path / "serve")
            async with ResolutionServer(app) as server:
                future = await self._raw_exchange(
                    server.port,
                    encode({"v": 99, "id": 5, "op": "healthz"}),
                )
                unknown = await self._raw_exchange(
                    server.port,
                    encode({"v": PROTOCOL_VERSION, "id": 6, "op": "explode"}),
                )
                garbage = await self._raw_exchange(server.port, b"}{\n")
                return future, unknown, garbage

        future, unknown, garbage = run(scenario())
        assert future["ok"] is False
        assert future["error"] == "unsupported_version"
        assert future["id"] == 5  # id echoed even on rejection
        assert unknown["error"] == "unknown_op"
        assert garbage["error"] == "bad_json"

    def test_unknown_session_and_bad_name(self, tmp_path):
        async def scenario():
            app = ServeApp(tmp_path / "serve")
            async with ResolutionServer(app) as server:
                async with AsyncServeClient(port=server.port) as client:
                    ghost = await client.request(
                        "query_clusters", session="ghost"
                    )
                    bad = await client.request(
                        "checkpoint", session="../escape"
                    )
                    return ghost, bad

        ghost, bad = run(scenario())
        assert ghost["error"] == "unknown_session"
        assert bad["error"] == "bad_session"

    def test_schema_mismatch_on_attach(self, small_table, tmp_path):
        async def scenario():
            app = ServeApp(tmp_path / "serve")
            async with ResolutionServer(app) as server:
                async with AsyncServeClient(port=server.port) as client:
                    await client.create_session("s", list(ATTRS))
                    with pytest.raises(ServeError, match="schema"):
                        await client.create_session("s", ["just", "two"])

        run(scenario())

    def test_healthz_and_metrics_over_http(self, tmp_path):
        async def scenario():
            app = ServeApp(tmp_path / "serve")
            async with ResolutionServer(app) as server:
                async with AsyncServeClient(port=server.port) as client:
                    await client.create_session("h", list(ATTRS))
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                health_raw = await reader.read()
                writer.close()
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
                await writer.drain()
                metrics_raw = await reader.read()
                writer.close()
                return health_raw, metrics_raw

        health_raw, metrics_raw = run(scenario())
        head, _, body = health_raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.0 200 OK")
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["known_sessions"] == 1
        metrics_text = metrics_raw.partition(b"\r\n\r\n")[2].decode()
        assert "repro_serve_requests_total" in metrics_text
        assert "repro_serve_sessions_resident" in metrics_text
        assert "# TYPE repro_serve_request_seconds histogram" in metrics_text


class TestResilience:
    def test_client_disconnect_mid_ingest_keeps_session_consistent(
        self, small_table, tmp_path
    ):
        """A vanished client must not corrupt or abandon admitted work: the
        actor finishes the batch, and the session equals a direct run."""
        chunk = _chunks(small_table, 3)[0]

        async def scenario():
            app = ServeApp(tmp_path / "serve")
            async with ResolutionServer(app) as server:
                async with AsyncServeClient(port=server.port) as client:
                    await client.create_session("d", list(ATTRS))
                # Fire the ingest and slam the connection without reading.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    encode(
                        {
                            "v": PROTOCOL_VERSION,
                            "id": 1,
                            "op": "ingest",
                            "session": "d",
                            "rows": _rows(chunk),
                            "entity_ids": _ids(chunk),
                        }
                    )
                )
                await writer.drain()
                writer.close()
                # A fresh client's query serializes behind the orphaned
                # ingest on the same actor queue: no sleeps needed.
                async with AsyncServeClient(port=server.port) as client:
                    clusters = await client.query_clusters("d")
                    assert clusters["batches"] == 1
                    assert clusters["records"] == len(chunk)
                    record = await client.checkpoint("d")
                    return record["state_sha"]

        sha = run(scenario())
        assert sha == _direct_sha(small_table, tmp_path, "d", [chunk])

    def test_overload_sheds_with_retry_after_then_recovers(
        self, small_table, tmp_path
    ):
        """Past the queue depth, ingests shed (priced refusals, not queue
        collapse); honoring retry_after gets everything through, and the
        final state matches the direct serial run of the admitted batches."""
        chunks = _chunks(small_table, 6)

        async def scenario():
            app = ServeApp(
                tmp_path / "serve",
                max_sessions=2,
                queue_depth=1,
                crowd_latency=0.15,
            )
            async with ResolutionServer(app) as server:
                async with AsyncServeClient(port=server.port) as client:
                    await client.create_session("load", list(ATTRS))
                    results = await asyncio.gather(
                        *(
                            client.request(
                                "ingest",
                                session="load",
                                rows=_rows(chunk),
                                entity_ids=_ids(chunk),
                            )
                            for chunk in chunks
                        )
                    )
                    shed = [r for r in results if not r["ok"]]
                    accepted = [r for r in results if r["ok"]]
                    assert shed, "queue_depth=1 under a 6-deep burst must shed"
                    for refusal in shed:
                        assert refusal["error"] == "overloaded"
                        assert refusal["retry_after"] > 0
                    # Recovery: backing off per retry_after drains through.
                    for refusal in shed:
                        await asyncio.sleep(refusal["retry_after"])
                    health = await client.healthz()
                    assert health["status"] == "ok"
                    batches = (await client.query_clusters("load"))["batches"]
                    assert batches == len(accepted)

        run(scenario())

    def test_drain_sheds_and_checkpoints_every_session(
        self, small_table, tmp_path
    ):
        chunk = _chunks(small_table, 4)[0]

        async def scenario():
            app = ServeApp(tmp_path / "serve", max_sessions=4)
            async with ResolutionServer(app) as server:
                async with AsyncServeClient(port=server.port) as client:
                    for name in ("d1", "d2"):
                        await client.create_session(name, list(ATTRS))
                        await client.ingest(name, _rows(chunk), _ids(chunk))
                    drained = await app.drain()
                    assert {d["session"] for d in drained} == {"d1", "d2"}
                    with pytest.raises(OverloadedError) as excinfo:
                        await client.ingest("d1", _rows(chunk), _ids(chunk))
                    assert excinfo.value.retry_after > 0
                    health = await client.healthz()
                    assert health["status"] == "draining"
                    return drained

        drained = run(scenario())
        for record in drained:
            # The resolver name is part of the hashed state, so each
            # drained session gets its own same-named reference run.
            expected = _direct_sha(
                small_table, tmp_path, record["session"], [chunk]
            )
            assert record["state_sha"] == expected
