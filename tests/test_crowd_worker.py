"""Tests for the worker model and pools."""

import numpy as np
import pytest

from repro.crowd import ACCURACY_BANDS, Worker, WorkerPool
from repro.exceptions import ConfigurationError


class TestWorker:
    def test_perfect_worker_always_correct(self):
        worker = Worker(worker_id=0, accuracy=1.0, seed=0)
        for pair in [(0, 1), (2, 9), (5, 7)]:
            assert worker.answer(pair, True) is True
            assert worker.answer(pair, False) is False

    def test_zero_accuracy_always_wrong(self):
        worker = Worker(worker_id=0, accuracy=0.0, seed=0)
        # difficulty=1 -> error = min(0.5, 1.0) = 0.5, so use difficulty 2
        # is capped too; check the statistical property instead.
        wrong = sum(
            worker.answer((i, i + 1), True) != True for i in range(0, 400, 2)
        )
        assert wrong > 50  # errs about half the time at the 0.5 cap

    def test_answers_deterministic_per_pair(self):
        worker = Worker(worker_id=3, accuracy=0.7, seed=42)
        assert worker.answer((1, 2), True) == worker.answer((1, 2), True)

    def test_answers_order_independent(self):
        a = Worker(worker_id=3, accuracy=0.7, seed=42)
        b = Worker(worker_id=3, accuracy=0.7, seed=42)
        first = [a.answer((1, 2), True), a.answer((3, 4), False)]
        second = [b.answer((3, 4), False), b.answer((1, 2), True)]
        assert first == [second[1], second[0]]

    def test_accuracy_statistics(self):
        worker = Worker(worker_id=0, accuracy=0.8, seed=7)
        correct = sum(
            worker.answer((i, i + 1), True) for i in range(0, 4000, 2)
        )
        assert 0.75 <= correct / 2000 <= 0.85

    def test_difficulty_scales_error(self):
        worker = Worker(worker_id=0, accuracy=0.7, seed=7)
        easy_wrong = sum(
            not worker.answer((i, i + 1), True, difficulty=0.1)
            for i in range(0, 4000, 2)
        )
        hard_wrong = sum(
            not worker.answer((i, i + 1), True, difficulty=1.0)
            for i in range(0, 4000, 2)
        )
        assert easy_wrong < hard_wrong / 3

    def test_negative_difficulty_rejected(self):
        worker = Worker(worker_id=0, accuracy=0.7, seed=7)
        with pytest.raises(ConfigurationError):
            worker.answer((0, 1), True, difficulty=-1.0)

    def test_invalid_accuracy(self):
        with pytest.raises(ConfigurationError):
            Worker(worker_id=0, accuracy=1.2, seed=0)


class TestWorkerPool:
    def test_band_by_label(self):
        pool = WorkerPool(size=100, accuracy_range="80", seed=0)
        accuracies = [worker.accuracy for worker in pool.workers]
        low, high = ACCURACY_BANDS["80"]
        assert all(low <= a <= high for a in accuracies)

    def test_band_by_tuple(self):
        pool = WorkerPool(size=10, accuracy_range=(0.5, 0.6), seed=0)
        assert all(0.5 <= w.accuracy <= 0.6 for w in pool.workers)

    def test_unknown_band_label(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(accuracy_range="95")

    def test_invalid_band_tuple(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(accuracy_range=(0.9, 0.5))

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(size=0)

    def test_assignment_is_per_pair_deterministic(self):
        pool = WorkerPool(size=20, seed=1)
        first = [w.worker_id for w in pool.assign((3, 7), 5)]
        second = [w.worker_id for w in pool.assign((3, 7), 5)]
        assert first == second

    def test_assignment_distinct_workers(self):
        pool = WorkerPool(size=20, seed=1)
        ids = [w.worker_id for w in pool.assign((1, 2), 5)]
        assert len(set(ids)) == 5

    def test_assignment_too_large(self):
        pool = WorkerPool(size=3, seed=1)
        with pytest.raises(ConfigurationError):
            pool.assign((0, 1), 5)

    def test_mean_accuracy_within_band(self):
        pool = WorkerPool(size=200, accuracy_range="70", seed=0)
        assert 0.72 <= pool.mean_accuracy <= 0.78


class TestSpammers:
    def test_always_yes(self):
        worker = Worker(worker_id=0, accuracy=0.9, seed=0, behavior="always-yes")
        assert worker.answer((0, 1), False) is True
        assert worker.answer((2, 3), True) is True

    def test_always_no(self):
        worker = Worker(worker_id=0, accuracy=0.9, seed=0, behavior="always-no")
        assert worker.answer((0, 1), True) is False

    def test_random_ignores_truth(self):
        worker = Worker(worker_id=0, accuracy=1.0, seed=1, behavior="random")
        yes = sum(worker.answer((i, i + 1), True) for i in range(0, 2000, 2))
        assert 350 <= yes <= 650  # ~half, independent of the truth

    def test_random_deterministic_per_pair(self):
        worker = Worker(worker_id=0, accuracy=1.0, seed=1, behavior="random")
        assert worker.answer((4, 5), True) == worker.answer((4, 5), False)

    def test_unknown_behavior_rejected(self):
        with pytest.raises(ConfigurationError):
            Worker(worker_id=0, accuracy=0.9, seed=0, behavior="chaotic")

    def test_pool_spammer_fraction(self):
        pool = WorkerPool(size=40, seed=2, spammer_fraction=0.25)
        spammers = [w for w in pool.workers if w.behavior != "honest"]
        assert len(spammers) == 10

    def test_pool_spammer_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(spammer_fraction=1.5)
        with pytest.raises(ConfigurationError):
            WorkerPool(spammer_behavior="honest")

    def test_dawid_skene_downweights_spammers(self):
        """EM should estimate random spammers near 0.5 accuracy."""
        from repro.crowd.quality import DawidSkeneEstimator

        pool = WorkerPool(size=20, accuracy_range=(0.85, 0.95), seed=5,
                          spammer_fraction=0.3)
        truth = {(i, i + 1): bool(i % 4 == 0) for i in range(0, 1200, 2)}
        votes = {}
        for pair, answer in truth.items():
            workers = pool.assign(pair, 5)
            votes[pair] = [(w.worker_id, w.answer(pair, answer)) for w in workers]
        result = DawidSkeneEstimator(prior_yes=0.25).estimate(votes)
        spammers = [w.worker_id for w in pool.workers if w.behavior != "honest"]
        honest = [w.worker_id for w in pool.workers if w.behavior == "honest"]
        import numpy as np

        assert np.mean([result.accuracies[w] for w in spammers]) < 0.65
        assert np.mean([result.accuracies[w] for w in honest]) > 0.8
