"""Tests for the exporters: JSONL traces, Prometheus text, console views."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import (
    ManualClock,
    MetricsRegistry,
    Tracer,
    read_trace,
    render_metrics,
    render_trace,
    structure,
    to_prometheus,
    trace_records,
    write_metrics,
    write_trace,
)


def sample_trace():
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    with tracer.span("resolve", dataset="rest"):
        with tracer.span("resolve.join"):
            clock.advance(wall=0.5, cpu=0.4)
        with tracer.span("resolve.select") as span:
            span.set_attribute("questions", 96)
            clock.advance(wall=1.0, cpu=0.9)
    return tracer.export()


class TestTraceFiles:
    def test_records_are_preorder_with_parent_pointers(self):
        records = trace_records(sample_trace())
        assert [(r["id"], r["parent"], r["name"]) for r in records] == [
            (0, None, "resolve"),
            (1, 0, "resolve.join"),
            (2, 0, "resolve.select"),
        ]
        assert all("children" not in record for record in records)

    def test_write_read_roundtrip(self, tmp_path):
        spans = sample_trace()
        path = write_trace(spans, tmp_path / "run.trace.jsonl")
        assert read_trace(path) == spans

    def test_file_is_jsonl_with_a_header(self, tmp_path):
        path = write_trace(sample_trace(), tmp_path / "t.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"type": "header", "version": 1}
        assert all(line["type"] == "span" for line in lines[1:])

    def test_reader_rejects_garbage(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ObservabilityError, match="empty"):
            read_trace(empty)
        noise = tmp_path / "noise.jsonl"
        noise.write_text('{"type": "span", "id": 0}\n')
        with pytest.raises(ObservabilityError, match="header"):
            read_trace(noise)

    def test_render_trace_shows_tree_timings_and_attributes(self):
        rendered = render_trace(sample_trace())
        lines = rendered.splitlines()
        assert lines[0].startswith("resolve")
        assert "  resolve.join" in rendered
        assert "1500.00 ms" in lines[0]  # root wall = 0.5 + 1.0 s
        assert "[questions=96]" in rendered

    def test_render_trace_marks_errors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("disk on fire")
        rendered = render_trace(tracer.export())
        assert "!! RuntimeError: disk on fire" in rendered

    def test_render_trace_depth_and_duration_filters(self):
        spans = sample_trace()
        assert "resolve.join" not in render_trace(spans, max_depth=0)
        only_slow = render_trace(spans, min_seconds=0.75)
        assert "resolve.select" in only_slow
        assert "resolve.join" not in only_slow


class TestPrometheus:
    def test_counter_and_gauge_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_questions_total", "questions asked",
                         selector="power").inc(96)
        registry.gauge("repro_rounds", "rounds in the last run").set(5)
        text = to_prometheus(registry)
        assert "# HELP repro_questions_total questions asked" in text
        assert "# TYPE repro_questions_total counter" in text
        assert 'repro_questions_total{selector="power"} 96' in text
        assert "repro_rounds 5" in text

    def test_histogram_exposition_is_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_batch", "sizes",
                                       boundaries=(1.0, 5.0))
        for value in (1, 2, 7):
            histogram.observe(value)
        text = to_prometheus(registry)
        assert 'repro_batch_bucket{le="1"} 1' in text
        assert 'repro_batch_bucket{le="5"} 2' in text
        assert 'repro_batch_bucket{le="+Inf"} 3' in text
        assert "repro_batch_sum 10" in text
        assert "repro_batch_count 3" in text

    def test_family_members_share_one_header(self):
        registry = MetricsRegistry()
        registry.counter("c", "help", selector="a").inc()
        registry.counter("c", "help", selector="b").inc()
        text = to_prometheus(registry)
        assert text.count("# TYPE c counter") == 1
        assert 'c{selector="a"} 1' in text and 'c{selector="b"} 1' in text


class TestWriteMetrics:
    def test_suffix_picks_the_format(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        prom = write_metrics(registry, tmp_path / "m.prom")
        assert "# TYPE c counter" in prom.read_text()
        as_json = write_metrics(registry, tmp_path / "m.json")
        assert json.loads(as_json.read_text()) == {
            "c": [{"kind": "counter", "value": 3}]
        }

    def test_render_metrics_console_table(self):
        registry = MetricsRegistry()
        registry.counter("questions", selector="power").inc(96)
        registry.histogram("batch", boundaries=(1.0, 5.0)).observe(3)
        rendered = render_metrics(registry)
        assert "questions{selector=power}" in rendered
        assert "count=1 mean=3" in rendered


class TestTraceCli:
    def test_trace_command_renders_a_recorded_file(self, tmp_path, capsys):
        from repro.cli import main

        path = write_trace(sample_trace(), tmp_path / "run.trace.jsonl")
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "resolve" in out and "resolve.select" in out

    def test_trace_command_json_dump(self, tmp_path, capsys):
        from repro.cli import main

        path = write_trace(sample_trace(), tmp_path / "run.trace.jsonl")
        assert main(["trace", str(path), "--json"]) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert [r["name"] for r in records] == [
            "resolve", "resolve.join", "resolve.select",
        ]

    def test_trace_command_rejects_a_non_trace_file(self, tmp_path, capsys):
        from repro.cli import main

        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"type": "journal"}\n')
        assert main(["trace", str(bogus)]) == 1
        assert "error" in capsys.readouterr().err

    def test_roundtrip_preserves_structure(self, tmp_path):
        spans = sample_trace()
        path = write_trace(spans, tmp_path / "t.jsonl")
        assert structure(read_trace(path)) == structure(spans)
