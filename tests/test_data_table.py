"""Tests for the record/table model."""

import pytest

from repro.data import Record, Table
from repro.exceptions import DataError


class TestTable:
    def test_from_rows_assigns_ids(self):
        table = Table.from_rows("t", ("a",), [("x",), ("y",)])
        assert [record.record_id for record in table] == [0, 1]

    def test_entity_ids_attach(self):
        table = Table.from_rows("t", ("a",), [("x",), ("y",)], entity_ids=[5, 5])
        assert table[0].entity_id == 5
        assert table.has_ground_truth()

    def test_missing_entity_ids(self):
        table = Table.from_rows("t", ("a",), [("x",)])
        assert not table.has_ground_truth()

    def test_append_validates_arity(self):
        table = Table(name="t", attributes=("a", "b"))
        with pytest.raises(DataError):
            table.append(("only-one",))

    def test_wrong_record_id_rejected(self):
        with pytest.raises(DataError):
            Table(name="t", attributes=("a",), records=[Record(5, ("x",))])

    def test_record_text_joins_values(self):
        table = Table.from_rows("t", ("a", "b"), [("x", "y")])
        assert table.record_text(0) == "x y"

    def test_len_and_getitem(self):
        table = Table.from_rows("t", ("a",), [("x",), ("y",)])
        assert len(table) == 2
        assert table[1].values == ("y",)

    def test_record_indexing(self):
        record = Record(0, ("x", "y"))
        assert record[1] == "y"


class TestProjection:
    def test_project_keeps_columns_and_truth(self):
        table = Table.from_rows(
            "t", ("a", "b", "c"), [("1", "2", "3"), ("4", "5", "6")], entity_ids=[0, 1]
        )
        projected = table.project([2, 0])
        assert projected.attributes == ("c", "a")
        assert projected[0].values == ("3", "1")
        assert projected[1].entity_id == 1

    def test_project_empty_rejected(self):
        table = Table.from_rows("t", ("a",), [("x",)])
        with pytest.raises(DataError):
            table.project([])

    def test_project_out_of_range(self):
        table = Table.from_rows("t", ("a",), [("x",)])
        with pytest.raises(DataError):
            table.project([3])
