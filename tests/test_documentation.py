"""Consistency checks between code, benches, and documentation."""

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro

ROOT = Path(__file__).parent.parent
BENCH_DIR = ROOT / "benchmarks"


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_documented(self):
        for module in iter_modules():
            assert module.__doc__, f"{module.__name__} lacks a module docstring"

    def test_every_public_class_documented(self):
        for module in iter_modules():
            for name in getattr(module, "__all__", []) or []:
                item = getattr(module, name)
                if isinstance(item, type):
                    assert item.__doc__, f"{module.__name__}.{name} lacks a docstring"


class TestBenchCoverage:
    def bench_result_names(self):
        names = set()
        for path in BENCH_DIR.glob("bench_*.py"):
            names.update(re.findall(r'results\("([^"]+)"\)', path.read_text()))
        return names

    def test_experiments_md_references_real_benches(self):
        """Every results file EXPERIMENTS.md quotes is produced by a bench."""
        text = (ROOT / "EXPERIMENTS.md").read_text()
        quoted = set(re.findall(r"`([\w/]+\.txt)`", text))
        produced = self.bench_result_names()
        for name in quoted:
            stem = name.split("/")[-1]
            assert stem in produced, f"EXPERIMENTS.md references unknown {name}"

    def test_every_paper_figure_has_a_bench(self):
        bench_files = {p.name for p in BENCH_DIR.glob("bench_*.py")}
        for required in (
            "bench_table2_similarity.py",
            "bench_table3_datasets.py",
            "bench_fig09_11_accuracy_real.py",
            "bench_fig12_14_accuracy_simulation.py",
            "bench_fig15_17_similarity_functions.py",
            "bench_fig20_construction.py",
            "bench_fig21_22_grouping.py",
            "bench_fig23_24_group_vs_nongroup.py",
            "bench_fig25_26_serial_selection.py",
            "bench_fig27_30_parallel_selection.py",
            "bench_fig31_33_error_tolerant.py",
            "bench_fig34_num_attributes.py",
        ):
            assert required in bench_files

    def test_design_md_names_every_figure_bench(self):
        text = (ROOT / "DESIGN.md").read_text()
        for path in BENCH_DIR.glob("bench_fig*.py"):
            assert path.name in text, f"{path.name} missing from DESIGN.md"


class TestCLIRegistryConsistency:
    def test_cli_experiments_resolve_to_callables(self):
        from repro.cli import EXPERIMENTS

        for name, harness in EXPERIMENTS.items():
            assert callable(harness), name

    def test_version_exported(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
